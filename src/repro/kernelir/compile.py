"""Kernel-IR -> fused NumPy compiler (the "kernel JIT").

The lock-step interpreter (:mod:`repro.kernelir.interp`) pays Python-level
tree-walk dispatch for every IR node on every statement, every loop
iteration.  This module lowers a :class:`~repro.kernelir.ast.Kernel` *once*
into generated Python source — straight-line fused NumPy expressions,
activity masks materialized only where control flow actually diverges,
uniform-trip ``For`` loops emitted as plain Python ``for`` loops with
loop-invariant subexpressions hoisted — and ``compile()``/``exec``s it into
a callable with the same semantics as :meth:`Interpreter.launch`:

* identical results, bit for bit (pinned by the differential harness in
  ``tests/kernelir/test_compile_differential.py``);
* identical diagnostics: bounds checks, ``mem_flags`` enforcement,
  zero-step / loop-overflow errors carry the same message text;
* dynamic op counters behind the same ``count_ops`` flag (a separate
  compiled variant, since the counting code is woven into the body);
* barriers remain correct by construction (lock-step execution), exactly
  as in the interpreter.

Compiled callables are cached in ``LaunchPlanCache("kernelir.compiled")``
keyed on ``Kernel.fingerprint()`` plus the compile options.  On top of
that sits the whole-grid **fused launch plan**
(``LaunchPlanCache("kernelir.fused")``): per (kernel, launch shape,
scalars), size normalization, offset validation and the chunk-safety
analysis run once, and repeat launches go straight to the compiled
function — optionally split into contiguous lane chunks on the shared
chunk pool (:mod:`repro.workers`) when the static race verifier proves
lockstep equivalence (see :func:`_parallel_ok`).  IR the
compiler cannot prove it can lower faithfully (reads of conditionally
defined variables, id dimensions beyond ``work_dim``, non-identifier
names) raises :class:`UnsupportedKernelError`; :func:`launch_kernel` then
falls back transparently to the interpreter and records the reason in
:func:`compile_stats` (surfaced by ``python -m repro bench``).

The escape hatch is ``REPRO_NO_JIT=1`` (or :func:`set_engine`\\ ``("interp")``,
or ``--engine interp`` on the CLI): every functional launch then takes the
interpreter path, which the differential tests use to assert byte-identical
``results/*.csv`` output.
"""

from __future__ import annotations
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import special as _sp_special

from . import ast as ir
from .coarsen import N0_PARAM as _COARSEN_N0
from ..plancache import LaunchPlanCache
from .interp import (
    DynamicCounters,
    Interpreter,
    KernelExecutionError,
    LaunchResult,
    _Frame,
    _normalize_offset,
    _normalize_sizes,
    _validate_args,
)
from .types import I64

__all__ = [
    "CompiledKernel",
    "FusedPlan",
    "UnsupportedKernelError",
    "compile_kernel",
    "compile_stats",
    "generated_source",
    "get_compiled",
    "get_engine",
    "get_fused_plan",
    "jit_enabled",
    "launch_kernel",
    "reset_compile_stats",
    "set_engine",
]

DEFAULT_MAX_LOOP_ITERS = 10_000_000


class UnsupportedKernelError(Exception):
    """The compiler cannot lower this kernel faithfully; use the interpreter."""


# ---------------------------------------------------------------------------
# Runtime support functions referenced by generated code.
#
# Each mirrors one memory/control operation of the interpreter *exactly*
# (same evaluation order, same numpy calls, same error messages), with the
# one structural difference that an all-active mask is represented as
# ``None`` so fully converged code skips masking entirely.
# ---------------------------------------------------------------------------


def _rt_as_full(v, n):
    a = np.asarray(v)
    if a.shape == (n,):
        return a
    return np.broadcast_to(a, (n,))


def _rt_check_idx(idx, size, what, mask):
    sel = idx if mask is None else idx[mask]
    if sel.size and (sel.min() < 0 or sel.max() >= size):
        raise KernelExecutionError(
            f"out-of-bounds access on {what}: index range "
            f"[{int(sel.min())}, {int(sel.max())}] vs size {size}"
        )


def _rt_load(buf, idx, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    size = buf.shape[0]
    if bounds:
        _rt_check_idx(idx, size, what, mask)
    # Clip masked-off lanes so inactive gathers cannot fault.
    if mask is None or mask.all():
        safe = idx
    else:
        safe = np.clip(idx, 0, size - 1)
    if ctr is not None:
        ctr.loads += n if mask is None else int(mask.sum())
    return buf[safe]


def _rt_load_local(arr, glin, idx, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    size = arr.shape[1]
    if bounds:
        _rt_check_idx(idx, size, what, mask)
    if mask is None or mask.all():
        safe = idx
    else:
        safe = np.clip(idx, 0, size - 1)
    if ctr is not None:
        ctr.local_loads += n if mask is None else int(mask.sum())
    return arr[glin, safe]


def _rt_store(buf, idx, val, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    val = _rt_as_full(val, n)
    if bounds:
        _rt_check_idx(idx, buf.shape[0], what, mask)
    if mask is None:
        buf[idx] = val.astype(buf.dtype, copy=False)
        if ctr is not None:
            ctr.stores += n
    else:
        buf[idx[mask]] = val[mask].astype(buf.dtype, copy=False)
        if ctr is not None:
            ctr.stores += int(mask.sum())


def _rt_atomic(buf, idx, val, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    val = _rt_as_full(val, n)
    if bounds:
        _rt_check_idx(idx, buf.shape[0], what, mask)
    if mask is None:
        np.add.at(buf, idx, val.astype(buf.dtype, copy=False))
        if ctr is not None:
            ctr.atomic_ops += n
    else:
        np.add.at(buf, idx[mask], val[mask].astype(buf.dtype, copy=False))
        if ctr is not None:
            ctr.atomic_ops += int(mask.sum())


def _rt_store_local(arr, glin, idx, val, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    val = _rt_as_full(val, n)
    if bounds:
        _rt_check_idx(idx, arr.shape[1], what, mask)
    if mask is None:
        arr[glin, idx] = val.astype(arr.dtype, copy=False)
        if ctr is not None:
            ctr.local_stores += n
    else:
        arr[glin[mask], idx[mask]] = val[mask].astype(arr.dtype, copy=False)
        if ctr is not None:
            ctr.local_stores += int(mask.sum())


def _rt_atomic_local(arr, glin, idx, val, n, mask, what, bounds, ctr):
    idx = _rt_as_full(idx, n).astype(np.int64)
    val = _rt_as_full(val, n)
    if bounds:
        _rt_check_idx(idx, arr.shape[1], what, mask)
    if mask is None:
        np.add.at(arr, (glin, idx), val.astype(arr.dtype, copy=False))
        if ctr is not None:
            ctr.atomic_ops += n
    else:
        np.add.at(
            arr, (glin[mask], idx[mask]), val[mask].astype(arr.dtype, copy=False)
        )
        if ctr is not None:
            ctr.atomic_ops += int(mask.sum())


def _rt_masked_update(val, old, mask, n):
    """Masked reassignment of an already-defined variable."""
    val = _rt_as_full(np.asarray(val), n)
    if mask.all():
        # all lanes active: alias the value directly (interp fast path);
        # this preserves val's runtime dtype where np.where would promote.
        return val
    old = np.asarray(old)
    if old.shape != (n,):
        old = np.broadcast_to(old, (n,))
    return np.where(mask, val, old)


def _rt_masked_assign(val, old, mask, n):
    """Masked assignment when prior definition is only known at runtime.

    ``old is None`` encodes "never assigned" (env-absence in the
    interpreter): inactive lanes keep zero-init, exactly like
    ``Interpreter._exec_stmt``'s Assign path.
    """
    val = _rt_as_full(np.asarray(val), n)
    if mask.all():
        return val
    if old is None:
        return np.where(mask, val, 0).astype(val.dtype, copy=False)
    old = np.asarray(old)
    if old.shape != (n,):
        old = np.broadcast_to(old, (n,))
    return np.where(mask, val, old)


def _rt_as_bool(v, n):
    return _rt_as_full(np.asarray(v), n).astype(bool)


def _rt_loop_mask(mask, step, loopvar, stop):
    active = np.where(step > 0, loopvar < stop, loopvar > stop)
    return active if mask is None else mask & active


def _rt_zero_step(var):
    raise KernelExecutionError(f"loop {var}: zero step")


def _rt_loop_overflow(var, limit):
    raise KernelExecutionError(f"loop {var} exceeded {limit} iterations")


def _rt_readonly_err(name):
    raise KernelExecutionError(
        f"write to buffer {name!r} allocated with mem_flags.READ_ONLY"
    )


def _rt_writeonly_err(name):
    raise KernelExecutionError(
        f"read from buffer {name!r} allocated with mem_flags.WRITE_ONLY"
    )


_HELPERS = {
    "_np": np,
    "_erf": _sp_special.erf,
    "_af": _rt_as_full,
    "_ab": _rt_as_bool,
    "_ld": _rt_load,
    "_ldl": _rt_load_local,
    "_st": _rt_store,
    "_at": _rt_atomic,
    "_stl": _rt_store_local,
    "_atl": _rt_atomic_local,
    "_upd": _rt_masked_update,
    "_asgn": _rt_masked_assign,
    "_lm": _rt_loop_mask,
    "_zs": _rt_zero_step,
    "_lo": _rt_loop_overflow,
    "_ro_err": _rt_readonly_err,
    "_wo_err": _rt_writeonly_err,
}

_CMP_FN = {
    "<": "less",
    "<=": "less_equal",
    ">": "greater",
    ">=": "greater_equal",
    "==": "equal",
    "!=": "not_equal",
}
_BIT_FN = {
    "&": "bitwise_and",
    "|": "bitwise_or",
    "^": "bitwise_xor",
    "<<": "left_shift",
    ">>": "right_shift",
}


class _Codegen:
    """Lowers one kernel body to Python source (one compile variant)."""

    def __init__(self, kernel, count_ops, bounds_check, max_loop_iters):
        self.kernel = kernel
        self.count_ops = bool(count_ops)
        self.bounds_check = bool(bounds_check)
        self.max_loop_iters = int(max_loop_iters)
        self.lines = []
        self.indent = 1
        self.ntmp = 0
        self.ns = dict(_HELPERS)
        self.consts: Dict[tuple, str] = {}
        # constants/dtypes are emitted as module-level source lines (not
        # namespace entries) so the generated source is self-contained and
        # can be re-exec'd from the persistent disk cache
        self.const_lines = []
        self.dtype_lines = []
        self.dtypes = set()
        # transform-introduced arithmetic (thread coarsening's gid
        # reconstruction) excluded from the op counters
        self.synthetic = getattr(kernel, "synthetic_op_ids", frozenset())
        # store->load forwarding: (buffer, index code, mask) -> (temp, deps)
        self.fwd: Dict[tuple, tuple] = {}
        self.loaded_bufs = {
            e.buffer
            for st in ir.walk_stmts(kernel.body)
            for root in ir.stmt_exprs(st)
            for e in ir.walk_exprs(root)
            if isinstance(e, ir.Load)
        }
        self.buf_dtypes = {p.name: p.dtype for p in kernel.buffer_params}
        # static variable state: name -> "def" (bound on every path) or
        # "maybe" (bound on some paths / previous loop iterations only)
        self.defined: Dict[str, str] = {}
        self.uniform = set()  # names whose value is lane-invariant
        self.mask: Optional[str] = None  # current activity-mask variable
        self.lanes = "_n"  # active-lane count expression (count_ops only)
        self.hoisted: Dict[int, str] = {}  # id(expr node) -> hoisted temp
        self.in_hoist = False
        self.used_ids = set()
        self.used_sizes = set()
        self.used_bufs = set()
        self.used_locals = set()
        self.used_flags = set()

    # -- infrastructure ---------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self.ntmp += 1
        return f"_{prefix}{self.ntmp}"

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _check_name(self, name: str) -> None:
        if not name.isidentifier():
            raise UnsupportedKernelError(f"name {name!r} is not lowerable")

    def _const(self, dtype, value) -> str:
        key = (dtype.np_dtype.str, repr(value), type(value).__name__)
        name = self.consts.get(key)
        if name is None:
            name = f"_K{len(self.consts)}"
            self.consts[key] = name
            self.const_lines.append(f"{name} = {self._dt(dtype)}.type({value!r})")
        return name

    def _dt(self, dtype) -> str:
        name = f"_dt_{dtype.np_dtype.name}"
        if name not in self.dtypes:
            self.dtypes.add(name)
            self.dtype_lines.append(f"{name} = _np.dtype({dtype.np_dtype.name!r})")
        return name

    def _ctr(self) -> str:
        if self.count_ops:
            self.used_flags.add("ctr")
            return "_ctr"
        return "None"

    def _mask_arg(self) -> str:
        return self.mask if self.mask is not None else "None"

    # -- store->load forwarding -------------------------------------------
    # A later load of the same buffer element under the same (or a nested)
    # activity mask reuses the value temp of the most recent store or load
    # instead of gathering from memory: the memory round-trip disappears
    # from fused producer->consumer kernels while the dynamic load counter
    # and any would-be error stay exact (the recording access already
    # bounds-checked the identical index under the same mask).

    def _fwd_deps(self, index_expr) -> frozenset:
        return frozenset(
            e.name for e in ir.walk_exprs(index_expr) if isinstance(e, ir.Var)
        )

    def _fwd_record(self, buffer: str, idx: str, temp: str, deps) -> None:
        self.fwd[(buffer, idx, self.mask)] = (temp, deps)

    def _fwd_lookup(self, buffer: str, idx: str):
        ent = self.fwd.get((buffer, idx, self.mask))
        if ent is None and self.mask is not None:
            # an all-lanes value is valid under any nested mask
            ent = self.fwd.get((buffer, idx, None))
        return None if ent is None else ent[0]

    def _fwd_kill_buffer(self, buffer: str) -> None:
        for k in [k for k in self.fwd if k[0] == buffer]:
            del self.fwd[k]

    def _fwd_kill_name(self, name: str) -> None:
        for k in [k for k, (_, deps) in self.fwd.items() if name in deps]:
            del self.fwd[k]

    def _fwd_snapshot(self) -> dict:
        return dict(self.fwd)

    def _fwd_restore(self, snap: dict) -> None:
        # keep only entries valid on every path: present and unchanged in
        # both the snapshot and the branch we just lowered
        self.fwd = {k: v for k, v in snap.items() if self.fwd.get(k) == v}

    # -- static analyses --------------------------------------------------
    def _is_uniform(self, e) -> bool:
        if isinstance(e, ir.Const):
            return True
        if isinstance(e, (ir.GlobalSize, ir.LocalSize, ir.NumGroups)):
            return True
        if isinstance(e, ir.Var):
            return e.name in self.uniform
        if isinstance(e, (ir.GlobalId, ir.LocalId, ir.GroupId, ir.Load, ir.LoadLocal)):
            return False
        if isinstance(e, (ir.BinOp, ir.UnOp, ir.Call, ir.Select, ir.Cast)):
            return all(self._is_uniform(c) for c in e.children())
        return False

    @staticmethod
    def _assigned_names(body) -> set:
        names = set()
        for st in ir.walk_stmts(body):
            if isinstance(st, ir.Assign):
                names.add(st.name)
            elif isinstance(st, ir.For):
                names.add(st.var)
        return names

    @staticmethod
    def _merge_def(a: Dict[str, str], b: Dict[str, str]) -> Dict[str, str]:
        out = {}
        for k in set(a) | set(b):
            out[k] = "def" if (a.get(k) == "def" and b.get(k) == "def") else "maybe"
        return out

    def _counts_for(self, *exprs) -> None:
        """Statically aggregate arith-op counts for one statement's exprs.

        Mirrors ``Interpreter._count_arith``: only ARITH_OPS binops and
        intrinsic calls count (mad/fma as two ops), float vs int split on
        the node's static dtype, multiplied by the active-lane count of the
        enclosing mask.  Loads/stores/atomics/barriers are counted by the
        runtime helpers.
        """
        if not self.count_ops:
            return
        kf = ki = 0
        for root in exprs:
            for node in ir.walk_exprs(root):
                if id(node) in self.synthetic:
                    continue
                if isinstance(node, ir.BinOp) and node.op in ir.ARITH_OPS:
                    if node.dtype.is_float:
                        kf += 1
                    else:
                        ki += 1
                elif isinstance(node, ir.Call):
                    w = 2 if node.fn in ("mad", "fma") else 1
                    if node.dtype.is_float:
                        kf += w
                    else:
                        ki += w
        if kf:
            self.used_flags.add("ctr")
            self.emit(f"_ctr.flops += {kf} * {self.lanes}")
        if ki:
            self.used_flags.add("ctr")
            self.emit(f"_ctr.int_ops += {ki} * {self.lanes}")

    # -- expression lowering ----------------------------------------------
    def _expr(self, e) -> str:
        if not self.in_hoist:
            h = self.hoisted.get(id(e))
            if h is not None:
                return h
        if isinstance(e, ir.Const):
            return self._const(e.dtype, e.value)
        if isinstance(e, ir.GlobalId):
            return self._id_ref("g", e.dim)
        if isinstance(e, ir.LocalId):
            return self._id_ref("l", e.dim)
        if isinstance(e, ir.GroupId):
            return self._id_ref("grp", e.dim)
        if isinstance(e, ir.GlobalSize):
            return self._size_ref("gs", e.dim)
        if isinstance(e, ir.LocalSize):
            return self._size_ref("ls", e.dim)
        if isinstance(e, ir.NumGroups):
            return self._size_ref("ng", e.dim)
        if isinstance(e, ir.Var):
            if self.defined.get(e.name) != "def":
                raise UnsupportedKernelError(
                    f"read of possibly-undefined variable {e.name!r}"
                )
            return f"v_{e.name}"
        if isinstance(e, ir.BinOp):
            return self._binop(e)
        if isinstance(e, ir.UnOp):
            v = self._expr(e.operand)
            if e.op == "neg":
                return f"_np.negative({v})"
            return f"_np.logical_not({v})"
        if isinstance(e, ir.Call):
            return self._call(e)
        if isinstance(e, ir.Load):
            return self._load(e)
        if isinstance(e, ir.LoadLocal):
            return self._load_local(e)
        if isinstance(e, ir.Select):
            c = self._expr(e.cond)
            a = self._expr(e.if_true)
            b = self._expr(e.if_false)
            return f"_np.where(_np.asarray({c}, dtype=bool), {a}, {b})"
        if isinstance(e, ir.Cast):
            v = self._expr(e.operand)
            return f"_np.asarray({v}).astype({self._dt(e.dtype)}, copy=False)"
        raise UnsupportedKernelError(f"unknown expression {type(e).__name__}")

    def _id_ref(self, kind: str, dim: int) -> str:
        if dim >= self.kernel.work_dim:
            raise UnsupportedKernelError(
                f"id dimension {dim} >= work_dim {self.kernel.work_dim}"
            )
        self.used_ids.add((kind, dim))
        return f"_id_{kind}{dim}"

    def _size_ref(self, kind: str, dim: int) -> str:
        if dim >= self.kernel.work_dim:
            # get_*_size beyond the launch rank is 1 (OpenCL semantics),
            # known at compile time.
            return self._const(I64, 1)
        self.used_sizes.add((kind, dim))
        return f"_{kind}{dim}"

    def _binop(self, e) -> str:
        a = self._expr(e.lhs)
        b = self._expr(e.rhs)
        op = e.op
        if op in ir.CMP_OPS:
            return f"_np.{_CMP_FN[op]}({a}, {b})"
        if op == "and":
            return f"_np.logical_and({a}, {b})"
        if op == "or":
            return f"_np.logical_or({a}, {b})"
        if op in _BIT_FN:
            return f"_np.{_BIT_FN[op]}({a}, {b})"
        dt = self._dt(e.dtype)
        if op == "+":
            return f"_np.add({a}, {b}, dtype={dt})"
        if op == "-":
            return f"_np.subtract({a}, {b}, dtype={dt})"
        if op == "*":
            return f"_np.multiply({a}, {b}, dtype={dt})"
        if op == "/":
            if e.dtype.is_float:
                return f"_np.divide({a}, {b}, dtype={dt})"
            return f"_np.floor_divide({a}, {b}).astype({dt}, copy=False)"
        if op == "//":
            return f"_np.floor_divide({a}, {b}).astype({dt}, copy=False)"
        if op == "%":
            return f"_np.mod({a}, {b}).astype({dt}, copy=False)"
        if op == "min":
            return f"_np.minimum({a}, {b}).astype({dt}, copy=False)"
        if op == "max":
            return f"_np.maximum({a}, {b}).astype({dt}, copy=False)"
        raise UnsupportedKernelError(f"unknown binop {op!r}")

    def _call(self, e) -> str:
        args = [self._expr(a) for a in e.args]
        dt = self._dt(e.dtype)
        fn = e.fn
        if fn in ("exp", "log", "sqrt", "sin", "cos"):
            return f"_np.{fn}({args[0]}, dtype={dt})"
        if fn == "rsqrt":
            return f"(1.0 / _np.sqrt({args[0]})).astype({dt}, copy=False)"
        if fn == "fabs":
            return f"_np.abs({args[0]}).astype({dt}, copy=False)"
        if fn == "floor":
            return f"_np.floor({args[0]}).astype({dt}, copy=False)"
        if fn == "erf":
            return f"_erf({args[0]}).astype({dt}, copy=False)"
        if fn == "pow":
            return f"_np.power({args[0]}, {args[1]}).astype({dt}, copy=False)"
        if fn in ("mad", "fma"):
            return (
                f"(_np.asarray({args[0]}, dtype={dt})"
                f" * _np.asarray({args[1]}, dtype={dt})"
                f" + _np.asarray({args[2]}, dtype={dt})).astype({dt}, copy=False)"
            )
        raise UnsupportedKernelError(f"unknown intrinsic {fn!r}")

    def _load(self, e) -> str:
        if self.in_hoist:  # pragma: no cover - candidates exclude loads
            raise UnsupportedKernelError("load in hoisted expression")
        name = e.buffer
        self._check_name(name)
        self.used_bufs.add(name)
        self.used_flags.add("wo")
        self.emit(f"if {name!r} in _wo: _wo_err({name!r})")
        idx = self._expr(e.index)
        fwd = self._fwd_lookup(name, idx)
        if fwd is not None:
            if self.count_ops:
                self.used_flags.add("ctr")
                self.emit(f"_ctr.loads += {self.lanes}")
            return fwd
        what = repr(f"buffer {name!r}")
        t = self._fresh("t")
        self.emit(
            f"{t} = _ld(_b_{name}, {idx}, _n, {self._mask_arg()}, {what}, "
            f"{self.bounds_check}, {self._ctr()})"
        )
        self._fwd_record(name, idx, t, self._fwd_deps(e.index))
        return t

    def _load_local(self, e) -> str:
        if self.in_hoist:  # pragma: no cover - candidates exclude loads
            raise UnsupportedKernelError("load in hoisted expression")
        name = e.array
        self._check_name(name)
        self.used_locals.add(name)
        self.used_flags.add("glin")
        idx = self._expr(e.index)
        what = repr(f"local {name!r}")
        t = self._fresh("t")
        self.emit(
            f"{t} = _ldl(_la_{name}, _glin, {idx}, _n, {self._mask_arg()}, "
            f"{what}, {self.bounds_check}, {self._ctr()})"
        )
        return t

    # -- statement lowering -----------------------------------------------
    def _body(self, body) -> None:
        """Lower ``body`` as an indented block (emits ``pass`` if empty)."""
        self.indent += 1
        start = len(self.lines)
        for st in body:
            self._stmt(st)
        if len(self.lines) == start:
            self.emit("pass")
        self.indent -= 1

    def _stmt(self, s) -> None:
        if isinstance(s, ir.Assign):
            self._assign(s)
        elif isinstance(s, ir.Store):
            self._global_write(s, "_st")
        elif isinstance(s, ir.AtomicAdd):
            self._global_write(s, "_at")
        elif isinstance(s, ir.StoreLocal):
            self._local_write(s, "_stl")
        elif isinstance(s, ir.AtomicAddLocal):
            self._local_write(s, "_atl")
        elif isinstance(s, ir.If):
            self._if(s)
        elif isinstance(s, ir.For):
            self._for(s)
        elif isinstance(s, ir.Barrier):
            if self.count_ops:
                self.used_flags.add("ctr")
                self.emit("_ctr.barriers += 1")
        else:
            raise UnsupportedKernelError(f"unknown statement {type(s).__name__}")

    def _assign(self, s) -> None:
        self._check_name(s.name)
        self._counts_for(s.value)
        val = self._expr(s.value)
        self._fwd_kill_name(s.name)
        tgt = f"v_{s.name}"
        if self.mask is None:
            self.emit(f"{tgt} = {val}")
            self.defined[s.name] = "def"
            if self._is_uniform(s.value):
                self.uniform.add(s.name)
            else:
                self.uniform.discard(s.name)
            return
        state = self.defined.get(s.name)
        if state == "def":
            self.emit(f"{tgt} = _upd({val}, {tgt}, {self.mask}, _n)")
        else:
            # prior definition unknown statically; _asgn dispatches on the
            # runtime None sentinel exactly like the interpreter's env.get
            self.emit(f"{tgt} = _asgn({val}, {tgt}, {self.mask}, _n)")
            self.defined[s.name] = "def"
        self.uniform.discard(s.name)

    def _global_write(self, s, helper: str) -> None:
        self._counts_for(s.index, s.value)
        name = s.buffer
        self._check_name(name)
        self.used_bufs.add(name)
        self.used_flags.add("ro")
        self.emit(f"if {name!r} in _ro: _ro_err({name!r})")
        idx = self._expr(s.index)
        val = self._expr(s.value)
        what = repr(f"buffer {name!r}")
        self._fwd_kill_buffer(name)
        if helper == "_st" and name in self.loaded_bufs:
            # bind the stored value (converted exactly as the store helper
            # converts it) so a later load of the same element forwards
            t = self._fresh("t")
            self.emit(
                f"{t} = _af({val}, _n).astype("
                f"{self._dt(self.buf_dtypes[name])}, copy=False)"
            )
            val = t
            self._fwd_record(name, idx, t, self._fwd_deps(s.index))
        self.emit(
            f"{helper}(_b_{name}, {idx}, {val}, _n, {self._mask_arg()}, "
            f"{what}, {self.bounds_check}, {self._ctr()})"
        )

    def _local_write(self, s, helper: str) -> None:
        self._counts_for(s.index, s.value)
        name = s.array
        self._check_name(name)
        self.used_locals.add(name)
        self.used_flags.add("glin")
        idx = self._expr(s.index)
        val = self._expr(s.value)
        what = repr(f"local {name!r}")
        self.emit(
            f"{helper}(_la_{name}, _glin, {idx}, {val}, _n, {self._mask_arg()}, "
            f"{what}, {self.bounds_check}, {self._ctr()})"
        )

    def _if(self, s) -> None:
        self._counts_for(s.cond)
        if self._is_uniform(s.cond):
            self._if_uniform(s)
            return
        c = self._expr(s.cond)
        cb = self._fresh("c")
        self.emit(f"{cb} = _ab({c}, _n)")
        pre_mask, pre_lanes = self.mask, self.lanes
        pre_def, pre_uni = dict(self.defined), set(self.uniform)

        m1 = self._fresh("m")
        if pre_mask is None:
            self.emit(f"{m1} = {cb}")
        else:
            self.emit(f"{m1} = {pre_mask} & {cb}")
        self.emit(f"if {m1}.any():")
        self.indent += 1
        self.mask = m1
        if self.count_ops:
            lv = self._fresh("L")
            self.emit(f"{lv} = int({m1}.sum())")
            self.lanes = lv
        fwd_snap = self._fwd_snapshot()
        start = len(self.lines)
        for st in s.then_body:
            self._stmt(st)
        if len(self.lines) == start:
            self.emit("pass")
        self.indent -= 1
        self._fwd_restore(fwd_snap)
        then_def, then_uni = self.defined, self.uniform
        self.mask, self.lanes = pre_mask, pre_lanes

        if s.else_body:
            self.defined, self.uniform = dict(pre_def), set(pre_uni)
            m2 = self._fresh("m")
            if pre_mask is None:
                self.emit(f"{m2} = ~{cb}")
            else:
                self.emit(f"{m2} = {pre_mask} & ~{cb}")
            self.emit(f"if {m2}.any():")
            self.indent += 1
            self.mask = m2
            if self.count_ops:
                lv = self._fresh("L")
                self.emit(f"{lv} = int({m2}.sum())")
                self.lanes = lv
            fwd_snap = self._fwd_snapshot()
            start = len(self.lines)
            for st in s.else_body:
                self._stmt(st)
            if len(self.lines) == start:
                self.emit("pass")
            self.indent -= 1
            self._fwd_restore(fwd_snap)
            self.mask, self.lanes = pre_mask, pre_lanes
            else_def, else_uni = self.defined, self.uniform
        else:
            else_def, else_uni = pre_def, pre_uni

        self.defined = self._merge_def(then_def, else_def)
        self.uniform = then_uni & else_uni

    def _if_uniform(self, s) -> None:
        """Lane-invariant condition: a plain scalar Python ``if``."""
        c = self._expr(s.cond)
        pre_def, pre_uni = dict(self.defined), set(self.uniform)
        fwd_snap = self._fwd_snapshot()
        self.emit(f"if bool({c}):")
        self._body(s.then_body)
        self._fwd_restore(fwd_snap)
        then_def, then_uni = self.defined, self.uniform
        if s.else_body:
            self.defined, self.uniform = dict(pre_def), set(pre_uni)
            fwd_snap = self._fwd_snapshot()
            self.emit("else:")
            self._body(s.else_body)
            self._fwd_restore(fwd_snap)
            else_def, else_uni = self.defined, self.uniform
        else:
            else_def, else_uni = pre_def, pre_uni
        self.defined = self._merge_def(then_def, else_def)
        self.uniform = then_uni & else_uni

    def _for(self, s) -> None:
        self._check_name(s.var)
        self._counts_for(s.start, s.stop, s.step)
        bounds = (s.start, s.stop, s.step)
        # Integer restriction matches Interpreter._exec_for's fast-path
        # guard: a float step accumulates fractionally in the general
        # (divergent) walk, which a scalar integer walk cannot reproduce.
        if all(e.dtype.np_dtype.kind in "iu" for e in bounds) and all(
            self._is_uniform(e) for e in bounds
        ):
            self._for_uniform(s)
        else:
            self._for_divergent(s)

    def _post_loop_state(self, s, pre_def, pre_uni) -> None:
        """Merge definedness after a loop (body ran zero or more times)."""
        assigned = self._assigned_names(s.body)
        self.defined = dict(pre_def)
        for name in assigned:
            self.defined[name] = "def" if pre_def.get(name) == "def" else "maybe"
        if pre_def.get(s.var) is not None:
            self.defined[s.var] = pre_def[s.var]
        else:
            self.defined.pop(s.var, None)
        self.uniform = (pre_uni - assigned) - {s.var}

    def _for_divergent(self, s) -> None:
        fs = self._expr(s.start)
        fe = self._expr(s.stop)
        ft = self._expr(s.step)
        a, b, c = self._fresh("fs"), self._fresh("fe"), self._fresh("ft")
        self.emit(f"{a} = _af({fs}, _n)")
        self.emit(f"{b} = _af({fe}, _n)")
        self.emit(f"{c} = _af({ft}, _n)")
        self.emit(f"if ({c} == 0).any(): _zs({s.var!r})")
        lv = self._fresh("lv")
        self.emit(f"{lv} = {a}.astype(_np.int64, copy=True)")
        sv = self._fresh("sv")
        self.emit(f"{sv} = v_{s.var}")
        it = self._fresh("it")
        self.emit(f"{it} = 0")

        pre_mask, pre_lanes = self.mask, self.lanes
        pre_def, pre_uni = dict(self.defined), set(self.uniform)
        # forwarding must not cross the back edge: an entry recorded before
        # or inside the body would go stale in a later iteration
        self.fwd.clear()
        self.emit("while True:")
        self.indent += 1
        m = self._fresh("m")
        self.emit(f"{m} = _lm({self._mask_arg()}, {c}, {lv}, {b})")
        self.emit(f"if not {m}.any(): break")
        self.mask = m
        if self.count_ops:
            lvn = self._fresh("L")
            self.emit(f"{lvn} = int({m}.sum())")
            self.lanes = lvn
        self.emit(f"v_{s.var} = {lv}")
        self.defined[s.var] = "def"
        self.uniform.discard(s.var)
        for st in s.body:
            self._stmt(st)
        # the body may not reassign the induction variable (canonical
        # form); advance the private copy, as the interpreter does
        self.emit(f"{lv} = {lv} + {c}")
        self.emit(f"{it} += 1")
        self.emit(f"if {it} > {self.max_loop_iters}: _lo({s.var!r}, {self.max_loop_iters})")
        self.indent -= 1
        self.mask, self.lanes = pre_mask, pre_lanes
        self.fwd.clear()
        self.emit(f"v_{s.var} = {sv}")
        self._post_loop_state(s, pre_def, pre_uni)

    def _for_uniform(self, s) -> None:
        """Lane-invariant integer bounds: a plain Python loop, no masks."""
        fs = self._expr(s.start)
        fe = self._expr(s.stop)
        ft = self._expr(s.step)
        a, b, c = self._fresh("fs"), self._fresh("fe"), self._fresh("ft")
        self.emit(f"{a} = {fs}")
        self.emit(f"{b} = {fe}")
        self.emit(f"{c} = {ft}")
        self.emit(f"if {c} == 0: _zs({s.var!r})")
        si, ei, ti = self._fresh("s"), self._fresh("e"), self._fresh("t")
        self.emit(f"{si} = int({a})")
        self.emit(f"{ei} = int({b})")
        self.emit(f"{ti} = int({c})")
        tr = self._fresh("tr")
        self.emit(
            f"{tr} = max(0, -(({si} - {ei}) // {ti})) if {ti} > 0 "
            f"else max(0, -(({ei} - {si}) // -{ti}))"
        )

        hoist_ids = []
        if not self.count_ops:
            hoist_ids = self._emit_hoists(s, tr)

        sv = self._fresh("sv")
        self.emit(f"{sv} = v_{s.var}")
        cur = self._fresh("cur")
        self.emit(f"{cur} = {si}")
        k = self._fresh("k")
        pre_def, pre_uni = dict(self.defined), set(self.uniform)
        # see _for_divergent: no forwarding across the back edge
        self.fwd.clear()
        self.emit(f"for {k} in range({tr}):")
        self.indent += 1
        self.emit(f"v_{s.var} = _np.int64({cur})")
        self.defined[s.var] = "def"
        self.uniform.add(s.var)
        for st in s.body:
            self._stmt(st)
        self.emit(f"{cur} += {ti}")
        self.emit(f"if {k} >= {self.max_loop_iters}: _lo({s.var!r}, {self.max_loop_iters})")
        self.indent -= 1
        self.fwd.clear()
        self.emit(f"v_{s.var} = {sv}")
        for node_id in hoist_ids:
            self.hoisted.pop(node_id, None)
        self._post_loop_state(s, pre_def, pre_uni)

    def _emit_hoists(self, s, trip_var: str):
        """Hoist pure loop-invariant subexpressions above a uniform loop.

        Only side-effect-free subtrees (no loads: no bounds errors, no
        counters) whose variables are defined before the loop and not
        reassigned inside it.  Guarded by ``trips > 0`` so a zero-trip loop
        evaluates nothing, exactly like the interpreter.

        Loop-variance comes from the shared reaching-definitions pass
        (:func:`repro.kernelir.dataflow.kernel_reaching_defs`), cached per
        kernel fingerprint.
        """
        from .dataflow import kernel_reaching_defs

        banned = kernel_reaching_defs(self.kernel).variant_names(self.kernel, s)

        def invariant(e) -> bool:
            if isinstance(e, (ir.Load, ir.LoadLocal)):
                return False
            if isinstance(e, ir.Var):
                return e.name not in banned and self.defined.get(e.name) == "def"
            if isinstance(e, (ir.GlobalId, ir.LocalId, ir.GroupId)):
                return e.dim < self.kernel.work_dim
            return all(invariant(c) for c in e.children())

        candidates = []

        def visit(e) -> None:
            if isinstance(e, (ir.BinOp, ir.UnOp, ir.Call, ir.Cast, ir.Select)) and invariant(e):
                candidates.append(e)
                return
            for ch in e.children():
                visit(ch)

        for st in ir.walk_stmts(s.body):
            for t in ir.stmt_exprs(st):
                visit(t)
        if not candidates:
            return []

        self.emit(f"if {trip_var} > 0:")
        self.indent += 1
        self.in_hoist = True
        by_key: Dict[str, str] = {}
        registered = []
        try:
            for node in candidates:
                key = node.pretty()
                name = by_key.get(key)
                if name is None:
                    name = self._fresh("h")
                    self.emit(f"{name} = {self._expr(node)}")
                    by_key[key] = name
                self.hoisted[id(node)] = name
                registered.append(id(node))
        finally:
            self.in_hoist = False
        self.indent -= 1
        return registered

    # -- assembly ----------------------------------------------------------
    def build(self) -> Tuple[str, dict]:
        for p in self.kernel.scalar_params:
            self._check_name(p.name)
            self.defined[p.name] = "def"
            self.uniform.add(p.name)
        for p in self.kernel.buffer_params:
            self._check_name(p.name)
        for arr in self.kernel.local_arrays:
            self._check_name(arr.name)

        scalar_names = {p.name for p in self.kernel.scalar_params}
        prebind = sorted(self._assigned_names(self.kernel.body) - scalar_names)
        for name in prebind:
            self._check_name(name)

        for st in self.kernel.body:
            self._stmt(st)
        body_lines = self.lines

        pro = ["def _kernel_main(_frame):", "    _n = _frame.n"]
        if "ctr" in self.used_flags:
            pro.append("    _ctr = _frame.counters")
        if "ro" in self.used_flags:
            pro.append("    _ro = _frame.readonly")
        if "wo" in self.used_flags:
            pro.append("    _wo = _frame.writeonly")
        if "glin" in self.used_flags:
            pro.append("    _glin = _frame.group_linear")
        for kind, dim in sorted(self.used_ids):
            pro.append(f"    _id_{kind}{dim} = _frame.ids[({kind!r}, {dim})]")
        size_src = {"gs": "gsize", "ls": "lsize", "ng": "ngroups"}
        for kind, dim in sorted(self.used_sizes):
            pro.append(f"    _{kind}{dim} = _np.int64(_frame.{size_src[kind]}[{dim}])")
        for name in sorted(self.used_bufs):
            pro.append(f"    _b_{name} = _frame.buffers[{name!r}]")
        for name in sorted(self.used_locals):
            pro.append(f"    _la_{name} = _frame.locals[{name!r}]")
        for p in self.kernel.scalar_params:
            pro.append(f"    v_{p.name} = _frame.env[{p.name!r}]")
        for name in prebind:
            # None encodes "not yet assigned" (see _rt_masked_assign)
            pro.append(f"    v_{name} = None")

        # constants/dtypes go into the module prologue so the source is
        # self-contained: exec(src, dict(_HELPERS)) fully reconstructs the
        # kernel, which is what the persistent disk cache relies on
        header = self.dtype_lines + self.const_lines
        src = "\n".join(header + pro + body_lines) + "\n"
        return src, self.ns


class CompiledKernel:
    """A kernel lowered to Python/NumPy source, ready to launch."""

    __slots__ = ("kernel", "source", "count_ops", "bounds_check",
                 "max_loop_iters", "_fn")

    def __init__(self, kernel, fn, source, count_ops, bounds_check,
                 max_loop_iters):
        self.kernel = kernel
        self._fn = fn
        self.source = source
        self.count_ops = count_ops
        self.bounds_check = bounds_check
        self.max_loop_iters = max_loop_iters

    def launch(
        self,
        global_size,
        local_size=None,
        buffers: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
        global_offset=None,
        readonly=None,
        writeonly=None,
    ) -> LaunchResult:
        """Run the compiled kernel; same contract as ``Interpreter.launch``.

        ``count_ops`` is fixed at compile time (it selects a different
        compiled variant); everything else matches the interpreter.
        """
        buffers = dict(buffers or {})
        scalars = dict(scalars or {})
        gsize, lsize = _normalize_sizes(self.kernel, global_size, local_size)
        goffset = _normalize_offset(gsize, global_offset)
        _validate_args(self.kernel, buffers, scalars)
        counters = DynamicCounters() if self.count_ops else None
        frame = _Frame(
            self.kernel, gsize, lsize, buffers, scalars, counters, goffset,
            readonly=readonly, writeonly=writeonly,
        )
        self._fn(frame)
        return LaunchResult(
            global_size=gsize,
            local_size=lsize,
            num_groups=frame.ngroups,
            counters=counters,
        )


def compile_kernel(
    kernel: ir.Kernel,
    *,
    count_ops: bool = False,
    bounds_check: bool = True,
    max_loop_iters: int = DEFAULT_MAX_LOOP_ITERS,
) -> CompiledKernel:
    """Lower ``kernel`` to Python source and ``exec`` it into a callable.

    Raises :class:`UnsupportedKernelError` when the IR uses a construct the
    compiler cannot prove it can lower faithfully (callers should fall back
    to the interpreter; :func:`launch_kernel` does this automatically).
    """
    cg = _Codegen(kernel, count_ops, bounds_check, max_loop_iters)
    src, ns = cg.build()
    code = compile(src, f"<kernelir.compile:{kernel.name}>", "exec")
    exec(code, ns)
    return CompiledKernel(
        kernel, ns["_kernel_main"], src, bool(count_ops), bool(bounds_check),
        int(max_loop_iters),
    )


def generated_source(
    kernel: ir.Kernel,
    *,
    count_ops: bool = False,
    bounds_check: bool = True,
    max_loop_iters: int = DEFAULT_MAX_LOOP_ITERS,
    coarsen: int = 0,
) -> str:
    """The Python source the JIT generates for ``kernel`` (for dumps/CI).

    ``coarsen >= 2`` shows the thread-coarsened variant (raises
    :class:`repro.kernelir.coarsen.CoarsenError` when the kernel cannot
    legally be coarsened).
    """
    if coarsen and int(coarsen) >= 2:
        from .coarsen import get_coarsened

        kernel = get_coarsened(kernel, int(coarsen))
    return compile_kernel(
        kernel,
        count_ops=count_ops,
        bounds_check=bounds_check,
        max_loop_iters=max_loop_iters,
    ).source


# ---------------------------------------------------------------------------
# Whole-grid fused launch plans (with multi-core chunked execution)
# ---------------------------------------------------------------------------

#: per-(kernel, launch shape, scalars) launch plans: size normalization,
#: offset validation and the parallel-eligibility analysis run once, then
#: every repeat launch (the harness's ``repeat_to_target`` loop) goes
#: straight to the compiled function
_FUSED_CACHE = LaunchPlanCache("kernelir.fused", maxsize=256)

#: a launch splits across the chunk pool only when every chunk gets at
#: least this many lanes — below it, thread handoff dwarfs the numpy work
_MIN_CHUNK_LANES = 16384


def _parallel_ok(kernel, gsize, lsize, scalars) -> bool:
    """Whether chunked multi-core execution is provably lockstep-equivalent.

    The lockstep engines run each statement for *all* lanes before the
    next, so a lane may observe another lane's earlier global store;
    chunking breaks that. The shared dataflow core's R-RACE-GLOBAL facts
    report exactly the cross-workitem store/store and store/load overlaps
    (plus unprovable scatters) that make this observable, so a launch is
    chunk-safe iff :func:`repro.kernelir.dataflow.chunk_safety` proves the
    rule clean — and not suppressed, since a suppressed finding is dropped.
    Barriers, ``__local`` arrays and atomics take the serial path outright.
    The proof comes from ``LaunchPlanCache("kernelir.analysis")``, so the
    verifier, the scheduler and this JIT all consult one analysis run.
    """
    from .dataflow import chunk_safety

    return chunk_safety(kernel, gsize, lsize, scalars).eligible


def _slice_frame(frame: _Frame, lo: int, hi: int, counters) -> _Frame:
    """A shallow view of ``frame`` covering lanes ``[lo, hi)``.

    Buffers and scalars are shared (chunk-safety is established by
    :func:`_parallel_ok`); the per-lane id vectors are sliced views.
    ``locals`` is shared too, which is only sound because eligibility
    excludes kernels with ``__local`` arrays.
    """
    f = _Frame.__new__(_Frame)
    f.kernel = frame.kernel
    f.gsize = frame.gsize
    f.lsize = frame.lsize
    f.ngroups = frame.ngroups
    f.n = hi - lo
    f.buffers = frame.buffers
    f.env = frame.env
    f.locals = frame.locals
    f.group_linear = frame.group_linear[lo:hi]
    f.ids = {k: v[lo:hi] for k, v in frame.ids.items()}
    f.counters = counters
    f.readonly = frame.readonly
    f.writeonly = frame.writeonly
    return f


class FusedPlan:
    """One cached whole-grid launch: compiled fn + precomputed launch facts.

    When thread coarsening applies, the plan carries a second compiled
    kernel (``cck``, the coarsened variant) and the coarsened NDRange; the
    launch then runs the coarsened body but *reports* the original launch
    shape, so callers (device cost models, CSV writers) see an unchanged
    launch.
    """

    __slots__ = ("ck", "gsize", "lsize", "goffset", "parallel",
                 "cck", "cgsize", "clsize", "ngroups")

    def __init__(self, ck: "CompiledKernel", gsize, lsize, goffset,
                 parallel: bool, cck: "Optional[CompiledKernel]" = None,
                 cgsize=None, clsize=None):
        self.ck = ck
        self.gsize = gsize
        self.lsize = lsize
        self.goffset = goffset
        self.parallel = parallel
        self.cck = cck
        self.cgsize = cgsize
        self.clsize = clsize
        self.ngroups = tuple(g // l for g, l in zip(gsize, lsize))

    def launch(self, buffers, scalars, readonly=None,
               writeonly=None) -> LaunchResult:
        buffers = dict(buffers or {})
        scalars = dict(scalars or {})
        _validate_args(self.ck.kernel, buffers, scalars)
        if self.cck is not None:
            return self._launch_coarsened(buffers, scalars, readonly,
                                          writeonly)
        counters = DynamicCounters() if self.ck.count_ops else None
        frame = _Frame(
            self.ck.kernel, self.gsize, self.lsize, buffers, scalars,
            counters, self.goffset, readonly=readonly, writeonly=writeonly,
        )
        chunks = self._chunk_bounds(frame.n) if self.parallel else None
        if chunks:
            _STATS["launches_parallel"] += 1
            self._run_chunks(frame, chunks)
        else:
            self.ck._fn(frame)
        return LaunchResult(
            global_size=self.gsize,
            local_size=self.lsize,
            num_groups=frame.ngroups,
            counters=counters,
        )

    def _launch_coarsened(self, buffers, scalars, readonly,
                          writeonly) -> LaunchResult:
        """Run the coarsened variant; report the original launch shape.

        Arguments were already validated against the *original* kernel (so
        diagnostics are unchanged); the coarsened kernel's extra
        ``__cg_n0`` scalar is injected here.  Coarsened launches stay
        serial: the chunk-safety proof covered the original lane order, and
        the coarsened grid is 1/K the size anyway.
        """
        cscalars = dict(scalars)
        cscalars[_COARSEN_N0] = np.int64(self.gsize[0])
        counters = DynamicCounters() if self.cck.count_ops else None
        frame = _Frame(
            self.cck.kernel, self.cgsize, self.clsize, buffers, cscalars,
            counters, None, readonly=readonly, writeonly=writeonly,
        )
        _STATS["launches_coarsened"] += 1
        self.cck._fn(frame)
        return LaunchResult(
            global_size=self.gsize,
            local_size=self.lsize,
            num_groups=self.ngroups,
            counters=counters,
        )

    def _chunk_bounds(self, n: int):
        """Contiguous lane chunks, or None when the launch stays serial.

        Computed per launch (not cached on the plan) so a worker-count
        change mid-process takes effect immediately.
        """
        from .. import workers

        nchunks = min(workers.worker_count(), n // _MIN_CHUNK_LANES)
        if nchunks < 2:
            return None
        base, extra = divmod(n, nchunks)
        bounds = []
        lo = 0
        for i in range(nchunks):
            hi = lo + base + (1 if i < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _run_chunks(self, frame: _Frame, chunks) -> None:
        from .. import workers
        from ..obs import tracer as _obs_tracer

        sub = [
            _slice_frame(
                frame, lo, hi,
                DynamicCounters() if frame.counters is not None else None,
            )
            for lo, hi in chunks
        ]
        name = f"chunk {self.ck.kernel.name}"

        def run(f):
            tracer = _obs_tracer.ACTIVE
            if tracer is not None:
                with tracer.worker_span(workers.worker_index(), name,
                                        {"lanes": f.n}):
                    self.ck._fn(f)
            else:
                self.ck._fn(f)

        pool = workers.chunk_pool()
        futures = [pool.submit(run, f) for f in sub]
        error = None
        for fut in futures:  # chunk order: first failing chunk wins
            try:
                fut.result()
            except BaseException as e:  # noqa: BLE001 - deterministic re-raise
                if error is None:
                    error = e
        if error is not None:
            raise error
        if frame.counters is not None:
            # reduce in chunk order; integer sums, so associativity is moot,
            # but a fixed order keeps the reduction bit-for-bit reproducible
            for f in sub:
                c = f.counters
                frame.counters.flops += c.flops
                frame.counters.int_ops += c.int_ops
                frame.counters.loads += c.loads
                frame.counters.stores += c.stores
                frame.counters.local_loads += c.local_loads
                frame.counters.local_stores += c.local_stores
                frame.counters.atomic_ops += c.atomic_ops
                frame.counters.barriers += c.barriers


def _resolve_coarsen(coarsen) -> int:
    """Effective coarsening request: 0 = heuristic, 1 = off, K>=2 = forced.

    ``REPRO_COARSEN`` overrides per-launch requests globally (``0``/``1``
    disables, ``K`` forces) — the kill switch the byte-identity CI leg and
    the fuzzer's forced legs use.
    """
    import os

    env = os.environ.get("REPRO_COARSEN", "").strip()
    if env:
        try:
            v = int(env)
        except ValueError:
            v = None
        if v is not None:
            return 1 if v < 2 else v
    if coarsen is None:
        return 0
    v = int(coarsen)
    return 1 if v < 2 else v


def _pick_coarsen(ck: "CompiledKernel", gsize, goffset, creq: int,
                  hazard_free: bool) -> int:
    """The coarsening factor for one launch plan (1 = uncoarsened).

    Launch-shape half of the legality gate: the launch must be offset-free
    and the dataflow race proof (``hazard_free``, from the same
    ``chunk_safety`` verdict that gates chunked execution) must show the
    unrolled copies cannot observe each other.  Forced factors fall back
    to 1 silently when illegal — callers rely on transparent fallback.
    """
    if creq == 1 or not hazard_free:
        return 1
    if goffset is not None and any(goffset):
        return 1
    from .coarsen import choose_factor, coarsen_blockers

    if coarsen_blockers(ck.kernel) is not None:
        return 1
    n0 = gsize[0]
    if creq == 0:
        # heuristic mode: a grid big enough for chunked multi-core
        # execution gains more from chunking than from coarsening, and a
        # coarsened plan runs serial — leave it alone
        n = 1
        for g in gsize:
            n *= g
        if n >= 2 * _MIN_CHUNK_LANES:
            return 1
    factor = creq if creq >= 2 else choose_factor(ck.kernel, n0)
    if factor < 2 or factor > n0:
        return 1
    return factor


def _compile_coarsened(ck: "CompiledKernel",
                       factor: int) -> "Optional[CompiledKernel]":
    from .coarsen import CoarsenError, get_coarsened

    try:
        ckern = get_coarsened(ck.kernel, factor)
    except CoarsenError:
        return None
    return get_compiled(
        ckern,
        count_ops=ck.count_ops,
        bounds_check=ck.bounds_check,
        max_loop_iters=ck.max_loop_iters,
    )


def get_fused_plan(
    ck: "CompiledKernel", global_size, local_size=None, global_offset=None,
    scalars=None, coarsen=None,
) -> FusedPlan:
    """Cached launch plan for one (compiled kernel, shape, scalars) triple.

    Scalars join the key because the race analysis behind the parallel
    gate can depend on their concrete values (an index stride, say); the
    resolved coarsening request joins it because it selects a different
    compiled body.  The two expensive plan facts — the chunk-safety proof
    and the chosen coarsening factor — are persisted to the disk cache, so
    warm processes skip the dataflow analysis entirely.
    """
    gsize, lsize = _normalize_sizes(ck.kernel, global_size, local_size)
    goffset = _normalize_offset(gsize, global_offset)
    creq = _resolve_coarsen(coarsen)
    skey = tuple(sorted(
        (k, float(v)) for k, v in (scalars or {}).items()
    ))
    key = (
        _cache_key(ck.kernel, ck.count_ops, ck.bounds_check,
                   ck.max_loop_iters),
        gsize, lsize, goffset, skey, creq,
    )
    plan = _FUSED_CACHE.get(key)
    if plan is not None:
        return plan
    from .. import diskcache

    payload = diskcache.load_plan(key)
    if payload is not None:
        parallel = bool(payload["parallel"])
        factor = int(payload.get("coarsen", 1))
        _STATS["plans_loaded_disk"] += 1
    else:
        parallel = _parallel_ok(ck.kernel, gsize, lsize, scalars)
        factor = _pick_coarsen(ck, gsize, goffset, creq, parallel)
        diskcache.store_plan(key, {"parallel": parallel, "coarsen": factor})
    cck = None
    if factor > 1:
        cck = _compile_coarsened(ck, factor)
    if cck is not None:
        cg0 = -(-gsize[0] // factor)
        cgsize = (cg0,) + tuple(gsize[1:])
        plan = FusedPlan(ck, gsize, lsize, goffset, False,
                         cck=cck, cgsize=cgsize, clsize=cgsize)
    else:
        plan = FusedPlan(ck, gsize, lsize, goffset, parallel)
    _FUSED_CACHE.put(key, plan)
    return plan


# ---------------------------------------------------------------------------
# Compile cache, engine selection, dispatch
# ---------------------------------------------------------------------------

_COMPILED_CACHE = LaunchPlanCache("kernelir.compiled", maxsize=256)
#: negative cache: compile-option key -> reason string.  Always on (not
#: subject to REPRO_NO_CACHE) so unsupported kernels are not re-analyzed
#: on every launch, and always consulted before attempting a compile.
_UNSUPPORTED: Dict[tuple, str] = {}

_STATS = {
    "kernels_compiled": 0,
    "kernels_unsupported": 0,
    "kernels_loaded_disk": 0,
    "plans_loaded_disk": 0,
    "launches_compiled": 0,
    "launches_fused": 0,
    "launches_parallel": 0,
    "launches_coarsened": 0,
    "launches_fallback": 0,
    "launches_interp": 0,
}
_UNSUPPORTED_REASONS: Dict[str, str] = {}

_ENGINE = "compiled"

_DEFAULT_INTERP = Interpreter()


def set_engine(engine: str) -> None:
    """Select the functional execution engine: ``"compiled"`` or ``"interp"``."""
    global _ENGINE
    if engine not in ("compiled", "interp"):
        raise ValueError(f"unknown engine {engine!r} (use 'compiled' or 'interp')")
    _ENGINE = engine


def get_engine() -> str:
    return _ENGINE


def jit_enabled() -> bool:
    """True when functional launches should try the compiled path.

    ``REPRO_NO_JIT=1`` (any value except ``""``/``"0"``) forces the
    interpreter, mirroring ``REPRO_NO_CACHE`` for the plan caches.
    """
    if _ENGINE != "compiled":
        return False
    import repro

    return not repro.env_flag("REPRO_NO_JIT")


def _cache_key(kernel, count_ops, bounds_check, max_loop_iters) -> tuple:
    return (
        kernel.fingerprint(),
        bool(count_ops),
        bool(bounds_check),
        int(max_loop_iters),
    )


def get_compiled(
    kernel: ir.Kernel,
    *,
    count_ops: bool = False,
    bounds_check: bool = True,
    max_loop_iters: int = DEFAULT_MAX_LOOP_ITERS,
) -> Optional[CompiledKernel]:
    """Cached compile; ``None`` when the kernel is unsupported by the JIT."""
    key = _cache_key(kernel, count_ops, bounds_check, max_loop_iters)
    if key in _UNSUPPORTED:
        return None
    ck = _COMPILED_CACHE.get(key)
    if ck is not None:
        return ck
    from .. import diskcache

    payload = diskcache.load_kernel(key)
    if payload is not None:
        if "unsupported" in payload:
            _UNSUPPORTED[key] = payload["unsupported"]
            _UNSUPPORTED_REASONS[kernel.name] = payload["unsupported"]
            return None
        ck = _exec_cached_source(kernel, payload["source"], count_ops,
                                 bounds_check, max_loop_iters)
        if ck is not None:
            _STATS["kernels_loaded_disk"] += 1
            _COMPILED_CACHE.put(key, ck)
            return ck
        # unloadable source (e.g. truncated by a crashed writer): fall
        # through and recompile, which rewrites the entry
    from ..obs import tracer as _obs_tracer

    tracer = _obs_tracer.ACTIVE
    try:
        if tracer is not None:
            with tracer.wall_span(f"jit compile {kernel.name}", "jit",
                                  {"count_ops": count_ops}):
                ck = compile_kernel(
                    kernel,
                    count_ops=count_ops,
                    bounds_check=bounds_check,
                    max_loop_iters=max_loop_iters,
                )
        else:
            ck = compile_kernel(
                kernel,
                count_ops=count_ops,
                bounds_check=bounds_check,
                max_loop_iters=max_loop_iters,
            )
    except UnsupportedKernelError as e:
        _UNSUPPORTED[key] = str(e)
        _UNSUPPORTED_REASONS[kernel.name] = str(e)
        _STATS["kernels_unsupported"] += 1
        diskcache.store_kernel(key, {"unsupported": str(e)})
        if tracer is not None:
            tracer.instant(f"jit fallback {kernel.name}", "jit",
                           {"reason": str(e)})
        return None
    _STATS["kernels_compiled"] += 1
    _COMPILED_CACHE.put(key, ck)
    diskcache.store_kernel(key, {"source": ck.source})
    return ck


def _exec_cached_source(kernel, source, count_ops, bounds_check,
                        max_loop_iters) -> Optional[CompiledKernel]:
    """Rebuild a CompiledKernel from disk-cached generated source.

    The generated source is self-contained (constants and dtypes live in
    its module prologue), so ``exec`` over a fresh helper namespace fully
    reconstructs the callable without running the lowering pass.  Any
    failure — syntax damage, missing entry point — is treated as a cache
    miss.
    """
    try:
        ns = dict(_HELPERS)
        code = compile(source, f"<kernelir.compile:{kernel.name}>", "exec")
        exec(code, ns)
        fn = ns["_kernel_main"]
    except Exception:
        return None
    return CompiledKernel(kernel, fn, source, bool(count_ops),
                          bool(bounds_check), int(max_loop_iters))


def launch_kernel(
    kernel: ir.Kernel,
    global_size,
    local_size=None,
    *,
    buffers: Optional[Dict[str, np.ndarray]] = None,
    scalars: Optional[Dict[str, object]] = None,
    count_ops: bool = False,
    global_offset=None,
    readonly=None,
    writeonly=None,
    interpreter: Optional[Interpreter] = None,
    coarsen: Optional[int] = None,
) -> LaunchResult:
    """Engine-dispatching functional launch.

    Tries the compiled path when the JIT is enabled, falling back to
    ``interpreter`` (or a module-level default) when the kernel is
    unsupported or the engine is ``"interp"``/``REPRO_NO_JIT=1``.  Compile
    options (bounds checking, loop-iteration cap) are taken from the
    interpreter instance so both engines enforce identical policies.
    ``coarsen`` requests a thread-coarsening factor (``None`` = static
    heuristic, ``1`` = off); illegal requests fall back transparently.
    """
    interp = interpreter if interpreter is not None else _DEFAULT_INTERP
    if jit_enabled():
        ck = get_compiled(
            kernel,
            count_ops=count_ops,
            bounds_check=interp.bounds_check,
            max_loop_iters=interp.max_loop_iters,
        )
        if ck is not None:
            _STATS["launches_compiled"] += 1
            _STATS["launches_fused"] += 1
            plan = get_fused_plan(
                ck, global_size, local_size, global_offset, scalars,
                coarsen=coarsen,
            )
            return plan.launch(
                buffers, scalars, readonly=readonly, writeonly=writeonly,
            )
        _STATS["launches_fallback"] += 1
    else:
        _STATS["launches_interp"] += 1
    return interp.launch(
        kernel,
        global_size,
        local_size,
        buffers=buffers,
        scalars=scalars,
        count_ops=count_ops,
        global_offset=global_offset,
        readonly=readonly,
        writeonly=writeonly,
    )


def prepare_kernel(kernel: ir.Kernel) -> str:
    """Eagerly compile at program-build time; returns a build-log line.

    Called by the device models from ``Program.build()`` so that the first
    ``enqueue_nd_range_kernel`` already hits the compiled path, mirroring
    how a real OpenCL runtime does its codegen in ``clBuildProgram``.
    """
    if not jit_enabled():
        return "kernel JIT: disabled (interpreter engine)"
    ck = get_compiled(kernel)
    if ck is None:
        reason = _UNSUPPORTED_REASONS.get(kernel.name, "unsupported IR")
        return f"kernel JIT: interpreter fallback ({reason})"
    nlines = len(ck.source.splitlines())
    return f"kernel JIT: compiled to fused NumPy ({nlines} lines)"


def compile_stats() -> dict:
    """Snapshot of JIT activity (reported by ``python -m repro bench``)."""
    return {
        "engine": "compiled" if jit_enabled() else "interp",
        "kernels_compiled": _STATS["kernels_compiled"],
        "kernels_unsupported": _STATS["kernels_unsupported"],
        "kernels_loaded_disk": _STATS["kernels_loaded_disk"],
        "plans_loaded_disk": _STATS["plans_loaded_disk"],
        "launches": {
            "compiled": _STATS["launches_compiled"],
            "fused": _STATS["launches_fused"],
            "parallel": _STATS["launches_parallel"],
            "coarsened": _STATS["launches_coarsened"],
            "interp_fallback": _STATS["launches_fallback"],
            "interp_forced": _STATS["launches_interp"],
        },
        "unsupported": dict(sorted(_UNSUPPORTED_REASONS.items())),
    }


def reset_compile_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0
    _UNSUPPORTED_REASONS.clear()
