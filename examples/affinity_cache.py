#!/usr/bin/env python
"""The Figure 9 affinity experiment, narrated.

Two dependent kernels (vector addition produces, vector multiplication
consumes) run on eight pinned OpenMP threads.  Aligned pinning lets the
consumer hit the producer's still-warm private caches; misaligned pinning
forces every consumer load out to the shared L3.

This is the paper's argument for adding affinity to OpenCL: the OpenCL
runtime cannot make this guarantee, so it always risks the misaligned cost.

Run:  python examples/affinity_cache.py
"""

from repro.harness.experiments.fig9_affinity import (
    CORES,
    affinity_times,
    build_consumer,
    build_producer,
)
from repro.simcpu.cache import CacheHierarchy


def narrated_run(n=800_000):
    print(f"workload: {n} elements over {CORES} pinned threads")
    print(f"producer kernel: {build_producer().name}")
    print(f"consumer kernel: {build_consumer().name}\n")

    p_al, c_al = affinity_times(n, misaligned=False)
    p_mis, c_mis = affinity_times(n, misaligned=True)
    print("             computation1   computation2        total")
    print(f"aligned      {p_al/1e6:10.3f} ms {c_al/1e6:10.3f} ms "
          f"{(p_al+c_al)/1e6:10.3f} ms")
    print(f"misaligned   {p_mis/1e6:10.3f} ms {c_mis/1e6:10.3f} ms "
          f"{(p_mis+c_mis)/1e6:10.3f} ms")
    slow = (p_mis + c_mis) / (p_al + c_al)
    print(f"\nmisaligned runs {100 * (slow - 1):.1f}% longer "
          f"(paper: ~15%)")


def microscopic_view():
    """The same effect on the exact cache simulator, one line at a time."""
    print("\n-- microscopic view (exact cache simulator) --")
    h = CacheHierarchy(2, l1_bytes=4096, l2_bytes=16384, l3_bytes=65536,
                       cores_per_socket=2)
    # producer on core 0 streams 8KB
    h.access_range(0, 0, 8192)
    aligned = h.access_range(0, 0, 8192)      # consumer on the same core
    h2 = CacheHierarchy(2, l1_bytes=4096, l2_bytes=16384, l3_bytes=65536,
                        cores_per_socket=2)
    h2.access_range(0, 0, 8192)
    misaligned = h2.access_range(1, 0, 8192)  # consumer on the other core
    print(f"aligned consumer line sources   : {aligned}")
    print(f"misaligned consumer line sources: {misaligned}")
    print("misaligned reads come from the shared L3 -> the latency the "
          "paper measures")


if __name__ == "__main__":
    narrated_run()
    microscopic_view()
