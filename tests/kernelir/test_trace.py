"""Unit tests for memory-trace generation."""

import numpy as np
import pytest

from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import KernelExecutionError
from repro.kernelir.trace import TracingInterpreter, trace_kernel
from repro.kernelir.types import F32, I32


def copy_kernel():
    kb = KernelBuilder("copy")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g]
    return kb.finish()


def bufs(n):
    return {"a": np.arange(n, dtype=np.float32), "o": np.zeros(n, np.float32)}


class TestBasicTrace:
    def test_one_load_one_store_per_item(self):
        t = trace_kernel(copy_kernel(), 8, 4, buffers=bufs(8))
        assert len(t) == 16
        assert sum(1 for _ in t.loads()) == 8
        assert sum(1 for _ in t.stores()) == 8

    def test_elements_and_lanes(self):
        t = trace_kernel(copy_kernel(), 8, 4, buffers=bufs(8))
        loads = list(t.loads())
        assert [a.element for a in loads] == list(range(8))
        assert [a.workitem for a in loads] == list(range(8))
        assert [a.workgroup for a in loads] == [0] * 4 + [1] * 4

    def test_buffers_disjoint_in_address_space(self):
        t = trace_kernel(copy_kernel(), 8, 4, buffers=bufs(8))
        a_addrs = {x.byte_address for x in t.accesses if x.buffer == "a"}
        o_addrs = {x.byte_address for x in t.accesses if x.buffer == "o"}
        assert not (a_addrs & o_addrs)
        assert t.buffer_bases["a"] == 0
        assert t.buffer_bases["o"] % 4096 == 0

    def test_functional_results_still_computed(self):
        b = bufs(8)
        trace_kernel(copy_kernel(), 8, 4, buffers=b)
        np.testing.assert_array_equal(b["o"], b["a"])

    def test_refuses_large_launches(self):
        with pytest.raises(KernelExecutionError, match="refusing"):
            trace_kernel(copy_kernel(), 1 << 20, buffers=bufs(1 << 20),
                         max_items=1024)

    def test_loop_accesses_traced_per_iteration(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 3) as i:
            acc = kb.let("acc", acc + a[g * 3 + i])
        o[g] = acc
        t = trace_kernel(kb.finish(), 4, 2,
                         buffers={"a": np.ones(12, np.float32),
                                  "o": np.zeros(4, np.float32)})
        assert sum(1 for _ in t.loads()) == 12
        # per-item elements walk sequentially
        per_item = t.by_workitem()
        elems = [a.element for a in per_item[1] if not a.is_store]
        assert elems == [3, 4, 5]

    def test_masked_lanes_not_traced(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 2):
            o[g] = a[g]
        t = trace_kernel(kb.finish(), 8, buffers=bufs(8))
        assert len(t) == 4  # 2 loads + 2 stores

    def test_atomic_traced_as_rmw(self):
        kb = KernelBuilder("k")
        h = kb.buffer("h", I32)
        h.atomic_add(kb.global_id(0) % 2, kb.i32(1))
        t = trace_kernel(kb.finish(), 4, buffers={"h": np.zeros(2, np.int32)})
        assert sum(1 for _ in t.loads()) == 4
        assert sum(1 for _ in t.stores()) == 4

    def test_footprint(self):
        t = trace_kernel(copy_kernel(), 32, buffers=bufs(32))
        # 32 floats = 2 lines per buffer
        assert t.footprint_bytes(64) == 4 * 64


class TestReplay:
    def test_replay_counts_all_accesses(self):
        from repro.simcpu.cache import CacheHierarchy

        t = trace_kernel(copy_kernel(), 64, 16, buffers=bufs(64))
        h = CacheHierarchy(4, l1_bytes=1024, l2_bytes=4096, l3_bytes=16384,
                           cores_per_socket=4)
        counts = t.replay(h)
        assert sum(counts.values()) == len(t)

    def test_placement_changes_hit_pattern(self):
        """Replaying a second pass on the same vs a rotated core shows the
        affinity effect at trace granularity."""
        from repro.simcpu.cache import CacheHierarchy

        t = trace_kernel(copy_kernel(), 64, 16, buffers=bufs(64))
        groups = 64 // 16

        h1 = CacheHierarchy(4, l1_bytes=4096, l2_bytes=8192, l3_bytes=65536,
                            cores_per_socket=4)
        same = {g: g for g in range(groups)}
        t.replay(h1, same)
        aligned = t.replay(h1, same)

        h2 = CacheHierarchy(4, l1_bytes=4096, l2_bytes=8192, l3_bytes=65536,
                            cores_per_socket=4)
        t.replay(h2, same)
        rotated = {g: (g + 1) % 4 for g in range(groups)}
        misaligned = t.replay(h2, rotated)

        assert aligned["L1"] > misaligned["L1"]
        assert misaligned["L3"] > aligned["L3"]
