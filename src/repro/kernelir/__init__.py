"""SIMT kernel intermediate representation, interpreter and analyses.

This package is the substrate every other part of the reproduction builds on:
benchmark kernels are authored with :class:`KernelBuilder`, executed
functionally by :class:`Interpreter`, and costed by the device models using
:func:`analyze_kernel` plus the vectorizers.
"""

from .types import (
    BOOL,
    DType,
    F32,
    F64,
    I8,
    I32,
    I64,
    U8,
    U32,
    U64,
    common_type,
    dtype_of_value,
    promote,
)
from .ast import (
    AtomicAdd,
    AtomicAddLocal,
    Assign,
    Barrier,
    BinOp,
    BufferParam,
    Call,
    Cast,
    Const,
    Expr,
    For,
    GlobalId,
    GlobalSize,
    GroupId,
    If,
    Kernel,
    Load,
    LoadLocal,
    LocalArray,
    LocalId,
    LocalSize,
    NumGroups,
    ScalarParam,
    Select,
    Stmt,
    Store,
    StoreLocal,
    UnOp,
    Var,
    walk_exprs,
    walk_stmts,
)
from .builder import BufferHandle, KernelBuilder, LocalHandle
from .interp import DynamicCounters, Interpreter, KernelExecutionError, LaunchResult
from .analysis import (
    AccessInfo,
    AffineIndex,
    KernelAnalysis,
    LatencyTable,
    LaunchContext,
    OpCounts,
    affine_index,
    analyze_kernel,
)
from .vectorize import (
    LoopVectorizer,
    OpenCLVectorizer,
    VectorizationReport,
    dependence_chain_length,
)
from .compile import (
    CompiledKernel,
    UnsupportedKernelError,
    compile_kernel,
    compile_stats,
    generated_source,
    get_compiled,
    get_engine,
    jit_enabled,
    launch_kernel,
    prepare_kernel,
    reset_compile_stats,
    set_engine,
)
from .trace import KernelTrace, MemoryAccess, TracingInterpreter, trace_kernel
from .codegen import CodegenError, to_opencl_c, to_openmp_c
from .verify import RULES, Diagnostic, VerifyReport, verify_launch
from .dataflow import (
    ChunkSafety,
    Divergence,
    Interval,
    KernelDataflow,
    StrideCongruence,
    analysis_stats,
    analyze_launch,
    chunk_safety,
    kernel_reaching_defs,
    reset_analysis_stats,
)

__all__ = [
    # types
    "DType", "F32", "F64", "I8", "U8", "I32", "U32", "I64", "U64", "BOOL",
    "promote", "common_type", "dtype_of_value",
    # ast
    "Expr", "Const", "GlobalId", "LocalId", "GroupId", "GlobalSize",
    "LocalSize", "NumGroups", "Var", "BinOp", "UnOp", "Call", "Load",
    "LoadLocal", "Select", "Cast", "Stmt", "Assign", "Store", "StoreLocal",
    "AtomicAdd", "AtomicAddLocal", "For", "If", "Barrier", "BufferParam",
    "ScalarParam", "LocalArray", "Kernel", "walk_exprs", "walk_stmts",
    # builder
    "KernelBuilder", "BufferHandle", "LocalHandle",
    # interpreter
    "Interpreter", "LaunchResult", "DynamicCounters", "KernelExecutionError",
    # kernel JIT
    "CompiledKernel", "UnsupportedKernelError", "compile_kernel",
    "get_compiled", "launch_kernel", "prepare_kernel", "generated_source",
    "compile_stats",
    "reset_compile_stats", "jit_enabled", "set_engine", "get_engine",
    # analysis
    "LaunchContext", "LatencyTable", "OpCounts", "AccessInfo", "AffineIndex",
    "KernelAnalysis", "analyze_kernel", "affine_index",
    # vectorization
    "OpenCLVectorizer", "LoopVectorizer", "VectorizationReport",
    "dependence_chain_length",
    # tracing
    "TracingInterpreter", "KernelTrace", "MemoryAccess", "trace_kernel",
    # source generation
    "to_opencl_c", "to_openmp_c", "CodegenError",
    # static verification
    "verify_launch", "VerifyReport", "Diagnostic", "RULES",
    # dataflow core
    "Interval", "StrideCongruence", "Divergence", "KernelDataflow",
    "ChunkSafety", "analyze_launch", "chunk_safety", "kernel_reaching_defs",
    "analysis_stats", "reset_analysis_stats",
]
