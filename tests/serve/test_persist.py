"""Persistent serve result cache: dedupe across daemon *processes*.

Two fresh Python processes share one ``REPRO_CACHE_DIR``.  The first
daemon executes a launch and writes the response through to the disk
cache's ``serve`` partition; the second daemon — a cold process with an
empty in-memory result cache — must serve the identical bytes from disk
(``dedupe: "cached"``, counted as ``dedupe_persistent``) without
executing anything.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]

_DAEMON = """\
import json, sys
from repro.obs.metrics import MetricsRegistry
from repro.serve import ExperimentService, ServeConfig, serve_stats
from repro.serve.protocol import LaunchRequest

svc = ExperimentService(ServeConfig(workers=1, persistent=True),
                        registry=MetricsRegistry())
try:
    resp = svc.submit_request(LaunchRequest(
        tenant="persist", benchmark="Square", global_size=(256,)))
finally:
    svc.close()
print(json.dumps({"csv": resp["csv"], "dedupe": resp["dedupe"],
                  "stats": serve_stats()}))
"""


def _run_daemon(cache_dir):
    env = dict(os.environ, PYTHONPATH="src", REPRO_CACHE_DIR=str(cache_dir))
    proc = subprocess.run(
        [sys.executable, "-c", _DAEMON], env=env, cwd=str(_REPO),
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_result_cache_survives_daemon_restart(tmp_path):
    cache = tmp_path / "cache"

    first = _run_daemon(cache)
    assert first["dedupe"] == "leader"
    assert first["stats"]["executed"] == 1
    assert first["stats"]["dedupe_persistent"] == 0

    second = _run_daemon(cache)
    assert second["dedupe"] == "cached"
    assert second["stats"]["executed"] == 0
    assert second["stats"]["dedupe_persistent"] >= 1
    # the restarted daemon serves byte-identical output
    assert second["csv"] == first["csv"]


def test_persistence_defaults_off_for_embedded_services(tmp_path):
    # without persistent=True / REPRO_SERVE_PERSIST, nothing is written
    # through, so a second process re-executes
    cache = tmp_path / "cache"
    script = _DAEMON.replace("persistent=True", "persistent=None")
    env = dict(os.environ, PYTHONPATH="src", REPRO_CACHE_DIR=str(cache))
    env.pop("REPRO_SERVE_PERSIST", None)
    for expect_executed in (1, 1):
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, cwd=str(_REPO),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        out = json.loads(proc.stdout.strip().splitlines()[-1])
        assert out["stats"]["executed"] == expect_executed
        assert out["stats"]["dedupe_persistent"] == 0
