"""Out-of-order multicore CPU model (Xeon E5645-like, the paper's Table I).

Layers:

* :mod:`spec` — hardware parameters and the runtime-cost knobs;
* :mod:`cache` — exact set-associative cache simulator (locality studies);
* :mod:`cachemodel` — closed-form AMAT/traffic model (large-kernel timing);
* :mod:`core` — per-workitem out-of-order core cost (ILP/issue/memory);
* :mod:`scheduler` — workgroup-to-thread scheduling with dispatch overhead;
* :mod:`threads` — affinity policies and cross-kernel cache residency;
* :mod:`device` — the assembled device model minicl executes on.
"""

from .spec import CPUSpec, XEON_E5645
from .cache import AccessResult, Cache, CacheHierarchy, CacheStats
from .cachemodel import MemEstimate, MemoryCostModel
from .core import CoreModel, ItemCost
from .scheduler import ScheduleResult, WorkgroupScheduler, default_local_size
from .threads import AffinityPolicy, CoreResidencyTracker, parse_cpu_affinity
from .device import CPUDeviceModel, KernelCost, TransferCost

__all__ = [
    "CPUSpec", "XEON_E5645",
    "Cache", "CacheHierarchy", "CacheStats", "AccessResult",
    "MemoryCostModel", "MemEstimate",
    "CoreModel", "ItemCost",
    "WorkgroupScheduler", "ScheduleResult", "default_local_size",
    "AffinityPolicy", "CoreResidencyTracker", "parse_cpu_affinity",
    "CPUDeviceModel", "KernelCost", "TransferCost",
]
