"""``Vectoraddition`` — ``c[i] = a[i] + b[i]``.

Table II: global work sizes 110000, 1100000, 5500000, 11445000; local NULL.
The paper's flagship scheduling example: "If we create as many workitems as
the size of arrays, we end up creating significant overhead on CPUs."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = ["VectorAddBenchmark", "build_vectoradd_kernel"]


def build_vectoradd_kernel(coalesce: int = 1) -> Kernel:
    kb = KernelBuilder("vectoadd")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    gid = kb.global_id(0)
    if coalesce == 1:
        c[gid] = a[gid] + b[gid]
    else:
        n_per = kb.scalar("n_per", I32)
        with kb.loop("j", 0, n_per) as j:
            idx = kb.let("idx", gid * n_per + j)
            c[idx] = a[idx] + b[idx]
    return kb.finish()


class VectorAddBenchmark(Benchmark):
    name = "Vectoraddition"
    work_dim = 1
    default_global_sizes = ((110_000,), (1_100_000,), (5_500_000,), (11_445_000,))
    default_local_size = None  # Table II: NULL

    def kernel(self, coalesce: int = 1) -> Kernel:
        return build_vectoradd_kernel(coalesce)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n = int(global_size[0])
        return (
            {
                "a": rng.random(n, dtype=np.float32),
                "b": rng.random(n, dtype=np.float32),
                "c": np.zeros(n, dtype=np.float32),
            },
            {},
        )

    def reference(self, buffers, scalars, global_size):
        return {"c": buffers["a"] + buffers["b"]}
