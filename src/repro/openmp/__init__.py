"""Conventional parallel-programming baseline (OpenMP-like runtime).

Provides ``parallel_for`` with fork-join threading, static/dynamic schedules,
``OMP_PROC_BIND``/``GOMP_CPU_AFFINITY`` thread pinning, cross-loop cache
residency, and classic loop auto-vectorization — everything the paper
compares OpenCL against.
"""

from .env import OmpEnv
from .runtime import FORK_JOIN_NS, OpenMPRuntime, ParallelForResult

__all__ = ["OmpEnv", "OpenMPRuntime", "ParallelForResult", "FORK_JOIN_NS"]
