"""``pool_map`` must survive Ctrl-C and worker death without hanging.

The experiment service shuts down by interrupting in-flight pool work, so
the pool idiom has a hard contract: a ``KeyboardInterrupt`` delivered
while waiting on results, or a worker process that dies outright
(``os._exit``, OOM kill, segfault), drains the pool immediately and
surfaces a :class:`repro.harness.registry.WorkerPoolError` carrying the
partial results — never a hang, never a silent partial return.
"""

import os
import time

import pytest

from repro.harness.registry import WorkerPoolError, pool_map


def _square(x):
    return x * x


def _die_on(x, victim):
    if x == victim:
        os._exit(13)  # simulate a worker killed out from under the pool
    time.sleep(0.05)  # let the victim die while others are still queued
    return x * x


def _raise_on(x, victim):
    if x == victim:
        raise ValueError(f"boom on {x}")
    return x * x


class TestHappyPath:
    def test_serial_and_parallel_agree(self):
        args = [(i,) for i in range(8)]
        assert pool_map(_square, args, jobs=1) == pool_map(_square, args, jobs=4)

    def test_single_task_stays_in_process(self):
        assert pool_map(_square, [(3,)], jobs=8) == [9]


class TestWorkerDeath:
    def test_dead_worker_raises_with_partial_results(self):
        t0 = time.monotonic()
        with pytest.raises(WorkerPoolError) as ei:
            pool_map(_die_on, [(i, 2) for i in range(6)], jobs=2)
        # drained promptly (the old code path could wait forever)
        assert time.monotonic() - t0 < 30.0
        err = ei.value
        assert "worker process died" in str(err)
        assert len(err.results) == 6
        assert err.completed == sum(1 for r in err.results if r is not None)
        # whatever did complete is correct and in the right slot
        for i, r in enumerate(err.results):
            if r is not None:
                assert r == i * i

    def test_ordinary_exceptions_keep_their_type(self):
        with pytest.raises(ValueError, match="boom on 1"):
            pool_map(_raise_on, [(i, 1) for i in range(4)], jobs=2)


class TestKeyboardInterrupt:
    def test_interrupt_mid_collection_drains_and_reports(self, monkeypatch):
        # Deliver the interrupt deterministically: the first result
        # collection raises, exactly as a Ctrl-C during f.result() would.
        import concurrent.futures as cf

        real_result = cf.Future.result
        fired = {"n": 0}

        def interrupting_result(self, timeout=None):
            if fired["n"] == 2:  # two tasks collected, then Ctrl-C
                fired["n"] += 1
                raise KeyboardInterrupt
            fired["n"] += 1
            return real_result(self, timeout)

        monkeypatch.setattr(cf.Future, "result", interrupting_result)
        with pytest.raises(WorkerPoolError) as ei:
            pool_map(_square, [(i,) for i in range(8)], jobs=2)
        err = ei.value
        assert "interrupted" in str(err)
        assert isinstance(err.__cause__, KeyboardInterrupt)
        assert err.completed >= 2
        assert len(err.results) == 8
