"""Thread coarsening: merge K consecutive work-items into one (IR -> IR).

The paper's thread-scheduling experiment shows that per-work-item dispatch
overhead is the dominant cost of fine-grained NDRanges on CPUs; merging K
neighbouring work-items along dimension 0 into one compiled work-item
amortizes that overhead by K.  :func:`coarsen_kernel` performs the merge as
a pure IR -> IR transform: the coarsened kernel's work-item ``i`` executes
``K`` unrolled copies of the original body, copy ``j`` impersonating the
original work-item ``i*K + j``.  The original ``get_global_size(0)`` is
threaded through a synthetic scalar parameter (``__cg_n0``) and each copy
is wrapped in a masked-tail guard ``if gid < __cg_n0`` so grids that do not
divide by K stay exact.

Counter exactness: the guard comparison is not a counted op (only
``ARITH_OPS`` count), and the two integer ops that reconstruct the original
global id per copy are tagged *synthetic* (``Kernel.synthetic_op_ids``) so
:meth:`repro.kernelir.compile._Codegen._counts_for` skips them.  Dynamic
load/store counters are exact by construction: the tail masks partition the
original lanes.

Legality (checked by :func:`coarsen_blockers` statically, plus the launch
shape gate in :mod:`repro.kernelir.compile`):

* no barriers, ``__local`` arrays, or atomics (the coarsened grid has a
  different workgroup structure, and atomics observe execution order);
* no reads of ``get_local_id``/``get_group_id``/``get_local_size``/
  ``get_num_groups`` (their values change under coarsening);
* no private variable shadowing a scalar parameter (per-copy renaming
  could not preserve the pre-assignment read of the parameter);
* the launch must be offset-free and the PR 6 dataflow lattices must prove
  the launch free of cross-lane hazards (``chunk_safety``), since the
  unrolled copies reorder work-item execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast as ir
from .types import I64

__all__ = [
    "CoarsenError",
    "choose_factor",
    "coarsen_blockers",
    "coarsen_kernel",
]

#: modeled per-work-item scheduling overhead on the paper's CPUs, used by
#: the default-factor heuristic when the device cost model provides none
DEFAULT_ITEM_OVERHEAD_NS = 40.0

#: modeled cost of one counted arithmetic op / memory access (heuristic)
_NS_PER_OP = 6.0

#: never coarsen past this factor (unrolled body size grows linearly)
MAX_FACTOR = 8

#: scalar parameter carrying the original get_global_size(0)
N0_PARAM = "__cg_n0"


class CoarsenError(Exception):
    """The kernel cannot be coarsened (see :func:`coarsen_blockers`)."""


# -- legality ---------------------------------------------------------------

_BLOCKER_CACHE: Dict[str, Optional[str]] = {}


def coarsen_blockers(kernel: ir.Kernel) -> Optional[str]:
    """Why ``kernel`` cannot be coarsened, or ``None`` when it can.

    This is the *static* half of the legality gate; the launch-shape half
    (offset-free launch, ``chunk_safety`` hazard proof) lives with the
    launch plan in :mod:`repro.kernelir.compile`.
    """
    fp = kernel.fingerprint()
    if fp in _BLOCKER_CACHE:
        return _BLOCKER_CACHE[fp]
    reason = _blockers_uncached(kernel)
    _BLOCKER_CACHE[fp] = reason
    return reason


def _blockers_uncached(kernel: ir.Kernel) -> Optional[str]:
    if kernel.local_arrays:
        return "kernel declares __local arrays"
    assigned = set()
    for st in ir.walk_stmts(kernel.body):
        if isinstance(st, ir.Barrier):
            return "kernel uses barriers"
        if isinstance(st, (ir.AtomicAdd, ir.AtomicAddLocal)):
            return "kernel uses atomics"
        if isinstance(st, ir.Assign):
            assigned.add(st.name)
        elif isinstance(st, ir.For):
            assigned.add(st.var)
        for root in ir.stmt_exprs(st):
            for e in ir.walk_exprs(root):
                if isinstance(e, (ir.LocalId, ir.GroupId, ir.LocalSize,
                                  ir.NumGroups)):
                    return f"kernel reads {e.opencl_name}({e.dim})"
    scalar_names = {p.name for p in kernel.scalar_params}
    shadowed = assigned & scalar_names
    if shadowed:
        return (f"private variable shadows scalar parameter "
                f"{sorted(shadowed)[0]!r}")
    names = (assigned | scalar_names
             | {p.name for p in kernel.buffer_params})
    if any(n.startswith("__cg_") for n in names):
        return "kernel uses a reserved __cg_* name"
    return None


# -- the transform ----------------------------------------------------------


def _sub_expr(e: ir.Expr, gid_var: ir.Var, n0_var: ir.Var,
              renames: Dict[str, str]) -> ir.Expr:
    """Rebuild ``e`` with GlobalId(0)/GlobalSize(0) substituted and private
    names renamed.  Untouched subtrees are shared, which is sound: every
    context-dependent leaf (Var, GlobalId(0), GlobalSize(0)) is rebuilt."""
    if isinstance(e, ir.GlobalId):
        return gid_var if e.dim == 0 else e
    if isinstance(e, ir.GlobalSize):
        return n0_var if e.dim == 0 else e
    if isinstance(e, ir.Var):
        new = renames.get(e.name)
        return ir.Var(new, e.dtype) if new is not None else e
    if isinstance(e, (ir.Const, ir.LocalId, ir.GroupId, ir.LocalSize,
                      ir.NumGroups)):
        return e
    if isinstance(e, ir.BinOp):
        lhs = _sub_expr(e.lhs, gid_var, n0_var, renames)
        rhs = _sub_expr(e.rhs, gid_var, n0_var, renames)
        if lhs is e.lhs and rhs is e.rhs:
            return e
        return ir.BinOp(e.op, lhs, rhs)
    if isinstance(e, ir.UnOp):
        op = _sub_expr(e.operand, gid_var, n0_var, renames)
        return e if op is e.operand else ir.UnOp(e.op, op)
    if isinstance(e, ir.Call):
        args = tuple(_sub_expr(a, gid_var, n0_var, renames) for a in e.args)
        if all(a is b for a, b in zip(args, e.args)):
            return e
        return ir.Call(e.fn, args)
    if isinstance(e, ir.Load):
        idx = _sub_expr(e.index, gid_var, n0_var, renames)
        return e if idx is e.index else ir.Load(e.buffer, idx, e.dtype)
    if isinstance(e, ir.LoadLocal):
        idx = _sub_expr(e.index, gid_var, n0_var, renames)
        return e if idx is e.index else ir.LoadLocal(e.array, idx, e.dtype)
    if isinstance(e, ir.Select):
        c = _sub_expr(e.cond, gid_var, n0_var, renames)
        a = _sub_expr(e.if_true, gid_var, n0_var, renames)
        b = _sub_expr(e.if_false, gid_var, n0_var, renames)
        if c is e.cond and a is e.if_true and b is e.if_false:
            return e
        return ir.Select(c, a, b)
    if isinstance(e, ir.Cast):
        op = _sub_expr(e.operand, gid_var, n0_var, renames)
        return e if op is e.operand else ir.Cast(op, e.dtype)
    raise CoarsenError(f"unknown expression {type(e).__name__}")


def _sub_body(body, gid_var: ir.Var, n0_var: ir.Var,
              renames: Dict[str, str]) -> List[ir.Stmt]:
    out: List[ir.Stmt] = []
    for s in body:
        if isinstance(s, ir.Assign):
            out.append(ir.Assign(
                renames.get(s.name, s.name),
                _sub_expr(s.value, gid_var, n0_var, renames),
            ))
        elif isinstance(s, ir.Store):
            out.append(ir.Store(
                s.buffer,
                _sub_expr(s.index, gid_var, n0_var, renames),
                _sub_expr(s.value, gid_var, n0_var, renames),
            ))
        elif isinstance(s, ir.StoreLocal):
            out.append(ir.StoreLocal(
                s.array,
                _sub_expr(s.index, gid_var, n0_var, renames),
                _sub_expr(s.value, gid_var, n0_var, renames),
            ))
        elif isinstance(s, ir.For):
            out.append(ir.For(
                renames.get(s.var, s.var),
                _sub_expr(s.start, gid_var, n0_var, renames),
                _sub_expr(s.stop, gid_var, n0_var, renames),
                _sub_expr(s.step, gid_var, n0_var, renames),
                _sub_body(s.body, gid_var, n0_var, renames),
            ))
        elif isinstance(s, ir.If):
            out.append(ir.If(
                _sub_expr(s.cond, gid_var, n0_var, renames),
                _sub_body(s.then_body, gid_var, n0_var, renames),
                _sub_body(s.else_body, gid_var, n0_var, renames),
            ))
        else:
            raise CoarsenError(f"unsupported statement {type(s).__name__}")
    return out


def coarsen_kernel(kernel: ir.Kernel, factor: int) -> ir.Kernel:
    """The coarsened kernel: ``factor`` unrolled copies with a masked tail.

    The result carries two extra attributes consumed by the compiler:
    ``synthetic_op_ids`` (ids of transform-introduced arithmetic nodes the
    op counters must skip) and ``coarsen_factor``.
    """
    if factor < 2:
        raise ValueError(f"coarsen factor must be >= 2, got {factor}")
    reason = coarsen_blockers(kernel)
    if reason is not None:
        raise CoarsenError(reason)

    assigned = set()
    for st in ir.walk_stmts(kernel.body):
        if isinstance(st, ir.Assign):
            assigned.add(st.name)
        elif isinstance(st, ir.For):
            assigned.add(st.var)

    n0_var = ir.Var(N0_PARAM, I64)
    synthetic: List[int] = []
    body: List[ir.Stmt] = []
    for j in range(factor):
        gid_name = f"__cg_gid{j}"
        gid_var = ir.Var(gid_name, I64)
        # original gid = new gid * K + j; these two ops are bookkeeping the
        # original kernel never executed, so they are excluded from counters
        mul = ir.BinOp("*", ir.GlobalId(0), ir.Const(factor))
        add = ir.BinOp("+", mul, ir.Const(j))
        synthetic += [id(mul), id(add)]
        renames = {n: f"{n}__c{j}" for n in assigned}
        body.append(ir.Assign(gid_name, add))
        body.append(ir.If(
            ir.BinOp("<", gid_var, n0_var),
            _sub_body(kernel.body, gid_var, n0_var, renames),
        ))

    coarse = ir.Kernel(
        name=f"{kernel.name}__cg{factor}",
        params=list(kernel.params) + [ir.ScalarParam(N0_PARAM, I64)],
        local_arrays=[],
        body=body,
        work_dim=kernel.work_dim,
        suppressions=kernel.suppressions,
    )
    coarse.synthetic_op_ids = frozenset(synthetic)
    coarse.coarsen_factor = factor
    return coarse


_DERIVED: Dict[Tuple[str, int], ir.Kernel] = {}


def get_coarsened(kernel: ir.Kernel, factor: int) -> ir.Kernel:
    """Memoized :func:`coarsen_kernel` (keyed on fingerprint + factor)."""
    key = (kernel.fingerprint(), int(factor))
    k = _DERIVED.get(key)
    if k is None:
        k = _DERIVED[key] = coarsen_kernel(kernel, factor)
    return k


# -- default-factor heuristic ----------------------------------------------


def _static_ops_per_item(kernel: ir.Kernel) -> Tuple[int, bool]:
    """(counted ops + memory accesses per work-item, has control flow)."""
    ops = 0
    control = False
    for st in ir.walk_stmts(kernel.body):
        if isinstance(st, (ir.For, ir.If)):
            control = True
        if isinstance(st, (ir.Store, ir.StoreLocal, ir.AtomicAdd,
                           ir.AtomicAddLocal)):
            ops += 1
        for root in ir.stmt_exprs(st):
            for e in ir.walk_exprs(root):
                if isinstance(e, ir.BinOp) and e.op in ir.ARITH_OPS:
                    ops += 1
                elif isinstance(e, ir.Call):
                    ops += 2 if e.fn in ("mad", "fma") else 1
                elif isinstance(e, (ir.Load, ir.LoadLocal)):
                    ops += 1
    return ops, control


def choose_factor(kernel: ir.Kernel, n0: int,
                  item_overhead_ns: Optional[float] = None) -> int:
    """Default coarsening factor for one launch (1 = leave uncoarsened).

    Mirrors the paper's amortization argument: merge work-items until the
    per-item compute is comparable to the modeled per-item scheduling
    overhead.  Deliberately conservative — only straight-line kernels over
    large grids that divide evenly qualify, so the default never trades a
    provable dispatch saving for tail-mask overhead.
    """
    if coarsen_blockers(kernel) is not None:
        return 1
    ops, control = _static_ops_per_item(kernel)
    if control or ops == 0:
        return 1
    overhead = (DEFAULT_ITEM_OVERHEAD_NS if item_overhead_ns is None
                else float(item_overhead_ns))
    k = 1
    while k < MAX_FACTOR and ops * _NS_PER_OP * k < overhead:
        k *= 2
    while k > 1 and (n0 % k != 0 or n0 // k < 2048):
        k //= 2
    return k
