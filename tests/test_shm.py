"""The zero-copy data plane: shared-memory segments and the batched pool.

Contracts under test (``src/repro/shm.py`` + ``src/repro/workers.py``):

* published datasets round-trip bit-for-bit through shared memory and come
  back as *read-only views*, not copies;
* blob spill is consume-once: the segment disappears after ``take_blob``;
* segment cleanup survives the ugly exits — a killed worker's segments are
  reclaimed by the next sweep (pid-sidecar based), a ``KeyboardInterrupt``
  teardown leaks nothing into ``/dev/shm``;
* batched dispatch returns results in submission order, byte-identical to
  the serial path, for batches much larger than the worker count.
"""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import diskcache, shm, workers
from repro.harness.registry import WorkerPoolError, pool_map


def _segments() -> set:
    return {p.name for p in Path("/dev/shm").glob("repro-shm-*")}


def _square(x):
    return x * x


def _big_result(n):
    # well past the spill threshold, so the payload travels via a blob
    return np.arange(n, dtype=np.float64)


def _crash_holding_segment(i):
    if i == 1:
        shm.publish_arrays(("crash-owned", os.getpid(), time.time_ns()),
                          {"x": np.ones(32, np.float32)})
        os._exit(13)
    time.sleep(0.05)
    return i


pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no POSIX shared memory"
)


@pytest.fixture(autouse=True)
def baseline():
    """Release this process's segments, then yield the set of segments other
    owners (earlier tests' dead workers, unrelated processes) left behind —
    leak assertions compare against it instead of demanding an empty
    ``/dev/shm``."""
    shm.release_all()
    shm.sweep_stale_segments()
    yield _segments()
    shm.release_all()
    workers.shutdown_pools()


class TestArraySegments:
    def test_publish_attach_round_trip(self):
        rng = np.random.default_rng(7)
        arrays = {
            "a": rng.standard_normal(257).astype(np.float32),
            "b": np.arange(33, dtype=np.int64).reshape(3, 11),
        }
        scalars = {"n": 257, "alpha": 0.5}
        key = ("round-trip", os.getpid())
        assert shm.publish_arrays(key, arrays, scalars)
        got_arrays, got_scalars = shm.attach_arrays(key)
        assert got_scalars == scalars
        for name, a in arrays.items():
            np.testing.assert_array_equal(got_arrays[name], a)
            assert not got_arrays[name].flags.writeable
        # zero-copy: the views alias the mapping, not a fresh allocation
        assert got_arrays["a"].base is not None

    def test_attach_miss_returns_none(self):
        assert shm.attach_arrays(("never-published", 1)) is None

    def test_publish_is_idempotent(self):
        key = ("race", os.getpid())
        arrays = {"x": np.zeros(8, np.float32)}
        assert shm.publish_arrays(key, arrays)
        # second publisher of the same content address wins by attaching
        assert shm.publish_arrays(key, arrays)

    def test_kill_switch_disables_the_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        key = ("disabled", os.getpid())
        assert not shm.publish_arrays(key, {"x": np.zeros(4, np.float32)})
        assert shm.attach_arrays(key) is None

    def test_oversized_dataset_is_refused(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MAX_MB", "1")
        key = ("too-big", os.getpid())
        assert not shm.publish_arrays(
            key, {"x": np.zeros(2 << 20, np.float64)}
        )

    def test_release_all_unlinks_owned_segments(self, baseline):
        key = ("release", os.getpid())
        shm.publish_arrays(key, {"x": np.zeros(4, np.float32)})
        assert _segments() - baseline, "publish left no segment"
        shm.release_all()
        assert not (_segments() - baseline)


class TestBlobSegments:
    def test_blob_is_consume_once(self):
        data = pickle.dumps(list(range(1000)))
        name = shm.publish_blob(data)
        assert name is not None
        assert shm.take_blob(name) == data
        # consumed: the name is gone from /dev/shm and a re-take misses
        assert name not in _segments()
        assert shm.take_blob(name) is None


class TestSweep:
    def test_dead_owner_segment_is_reclaimed(self, baseline):
        # a subprocess publishes a segment and hard-exits without cleanup
        code = (
            "import numpy as np, sys; sys.path.insert(0, 'src');"
            "from repro import shm; import os;"
            "shm.publish_arrays(('sweep-test', os.getpid()),"
            " {'x': np.ones(16, np.float32)});"
            "os._exit(11)"
        )
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run([sys.executable, "-c", code], env=env,
                       cwd=str(Path(__file__).resolve().parents[1]))
        leaked = _segments() - baseline
        assert leaked, "crashed publisher left nothing to sweep"
        sidecars = list((diskcache.cache_dir() / "shm").glob("*.json"))
        assert sidecars, "publisher recorded no ownership sidecar"
        removed = shm.sweep_stale_segments()
        assert removed >= 1
        assert not (_segments() & leaked)

    def test_live_owner_segment_is_never_swept(self):
        key = ("alive", os.getpid())
        shm.publish_arrays(key, {"x": np.zeros(4, np.float32)})
        mine = _segments()
        shm.sweep_stale_segments()
        assert mine <= _segments()


class TestBatchedPool:
    def test_large_batch_keeps_submission_order(self):
        args = [(i,) for i in range(100)]
        serial = pool_map(_square, args, jobs=1)
        pooled = pool_map(_square, args, jobs=4)
        assert pooled == serial

    def test_pool_persists_across_calls(self):
        args = [(i,) for i in range(8)]
        pool_map(_square, args, jobs=2)
        first = workers.process_pool(2)
        pool_map(_square, args, jobs=2)
        assert workers.process_pool(2) is first

    def test_large_results_spill_through_shm(self, baseline):
        workers.reset_pool_stats()
        n = 200_000  # 1.6 MB of float64 — far beyond the spill threshold
        out = pool_map(_big_result, [(n,), (n + 1,)], jobs=2)
        np.testing.assert_array_equal(out[0], np.arange(n, dtype=np.float64))
        np.testing.assert_array_equal(
            out[1], np.arange(n + 1, dtype=np.float64)
        )
        assert workers.pool_stats()["results_spilled"] >= 2
        # consume-once blobs: nothing left behind
        assert not any(
            s.startswith("repro-shm-b") for s in _segments() - baseline
        )

    def test_worker_crash_leaves_no_segments_after_sweep(self, baseline):
        with pytest.raises(WorkerPoolError):
            pool_map(_crash_holding_segment, [(i,) for i in range(4)], jobs=2)
        workers.shutdown_pools()
        # the victim died owning a published segment; the next pool start
        # (or an explicit sweep) must reclaim it
        shm.sweep_stale_segments()
        assert not (_segments() - baseline)

    def test_interrupt_teardown_leaks_nothing(self, baseline, monkeypatch):
        import concurrent.futures as cf

        real_result = cf.Future.result
        fired = {"n": 0}

        def interrupting_result(self, timeout=None):
            if fired["n"] == 1:
                fired["n"] += 1
                raise KeyboardInterrupt
            fired["n"] += 1
            return real_result(self, timeout)

        monkeypatch.setattr(cf.Future, "result", interrupting_result)
        with pytest.raises(WorkerPoolError, match="interrupted"):
            pool_map(_square, [(i,) for i in range(16)], jobs=2)
        workers.shutdown_pools()
        shm.sweep_stale_segments()
        assert not (_segments() - baseline)

    def test_shutdown_pools_releases_everything(self, baseline):
        pool_map(_square, [(i,) for i in range(4)], jobs=2)
        shm.publish_arrays(("shutdown", os.getpid()),
                          {"x": np.zeros(4, np.float32)})
        workers.shutdown_pools()
        assert not (_segments() - baseline)
        workers.shutdown_pools()  # idempotent
