"""Hardware description of the modelled CPU.

Defaults reproduce the paper's Table I machine: a dual-socket Intel Xeon
E5645 ("Westmere-EP", 6 cores per socket, 2-way SMT, SSE 4.2) at 2.40 GHz.
The paper's quoted peak of 230.4 single-precision Gflop/s corresponds to

    2.40 GHz x 4 SSE lanes x 2 FP pipes (mul + add) x 12 physical cores.

Cache sizes follow the paper's Table I (L1D/L2/L3 = 64K/256K/12M).
"""

from __future__ import annotations

import dataclasses

__all__ = ["CPUSpec", "XEON_E5645"]


@dataclasses.dataclass(frozen=True)
class CPUSpec:
    """Parameters of the out-of-order multicore CPU model."""

    name: str = "Intel(R) Xeon(R) CPU E5645 (2 sockets)"
    sockets: int = 2
    cores_per_socket: int = 6
    smt: int = 2
    frequency_ghz: float = 2.40

    # SIMD / pipeline
    simd_width_f32: int = 4       # SSE 4.2: 4 single-precision lanes
    fp_ports: int = 2             # separate multiply and add pipes
    mem_ports: int = 1            # load/store issue per cycle (simplified)
    int_ports: int = 2
    issue_width: int = 4          # overall decode/issue limit
    ooo_window: int = 96          # reorder-buffer reach used for cross-item overlap

    # Cache geometry (paper Table I)
    line_bytes: int = 64
    l1d_bytes: int = 64 * 1024
    l1_assoc: int = 8
    l1_latency: int = 4
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 8
    l2_latency: int = 10
    l3_bytes: int = 12 * 1024 * 1024   # shared per socket
    l3_assoc: int = 16
    l3_latency: int = 40
    dram_latency: int = 200            # cycles
    dram_bandwidth_gbps: float = 25.6  # triple-channel DDR3-1066 per socket
    l3_bandwidth_gbps: float = 48.0    # shared L3 ring, per socket

    # Software/runtime costs (the knobs the scheduling experiments exercise;
    # values are cycles unless noted).  See benchmarks/test_ablations.py.
    # Per-workgroup cost: task dequeue + workgroup state setup (the Intel
    # runtime executes each workgroup as one TBB-style task).
    workgroup_dispatch_cycles: float = 600.0
    # Per-workitem cost of the serialized workitem loop (function-call frame,
    # id computation); implicit vectorization divides it by the packet width.
    workitem_overhead_cycles: float = 12.0
    kernel_launch_overhead_ns: float = 1_500.0  # one clEnqueueNDRangeKernel
    #: effective memcpy bandwidth for clEnqueueRead/WriteBuffer staging copies
    copy_bandwidth_gbps: float = 6.0
    #: fixed OpenCL API cost of a copy command (alloc + bookkeeping)
    copy_api_overhead_ns: float = 8_000.0
    #: fixed cost of clEnqueueMapBuffer: return a pointer, no data movement
    map_api_overhead_ns: float = 1_500.0
    #: fixed cost of clEnqueueUnmapMemObject: release the mapping, no data
    #: movement on the shared-DRAM device
    unmap_overhead_ns: float = 200.0

    # -- derived ------------------------------------------------------------
    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def logical_cores(self) -> int:
        return self.physical_cores * self.smt

    @property
    def peak_gflops_sp(self) -> float:
        """Single-precision peak (matches the paper's 230.4 Gflop/s)."""
        return (
            self.frequency_ghz
            * self.simd_width_f32
            * self.fp_ports
            * self.physical_cores
        )

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.frequency_ghz

    def describe(self) -> dict:
        """Table-I-style description of the device."""
        return {
            "CPUs": self.name,
            "Vector width": f"SSE 4.2, {self.simd_width_f32} single precision FP",
            "Caches": (
                f"L1D/L2/L3: {self.l1d_bytes // 1024}K/"
                f"{self.l2_bytes // 1024}K/{self.l3_bytes // (1024 * 1024)}M"
            ),
            "FP peak performance": f"{self.peak_gflops_sp:.1f} Gflop/s",
            "Core frequency": f"{self.frequency_ghz:.2f} GHz",
            "Cores": f"{self.physical_cores} physical / {self.logical_cores} logical",
        }


#: The paper's machine.
XEON_E5645 = CPUSpec()
