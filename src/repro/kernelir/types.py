"""Scalar type system for the kernel IR.

The IR supports the small set of scalar types that the paper's kernels use
(single/double precision floats and the integer types needed for indexing,
histogram bins, and flag arithmetic).  Types carry their numpy dtype so the
lock-step interpreter can evaluate expressions directly on numpy arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

__all__ = [
    "DType",
    "F32",
    "F64",
    "I8",
    "U8",
    "I32",
    "U32",
    "I64",
    "U64",
    "BOOL",
    "promote",
    "common_type",
    "dtype_of_value",
    "ALL_TYPES",
]


@dataclasses.dataclass(frozen=True)
class DType:
    """A scalar IR type.

    Attributes
    ----------
    name:
        OpenCL-ish spelling (``float``, ``int``, ``uchar`` ...).
    np_dtype:
        The numpy dtype used by the interpreter.
    is_float:
        True for floating point types.
    signed:
        True for signed integer or float types.
    rank:
        Promotion rank; higher rank wins in mixed arithmetic.
    """

    name: str
    np_dtype: np.dtype
    is_float: bool
    signed: bool
    rank: int

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return self.np_dtype.itemsize

    @property
    def is_integer(self) -> bool:
        return not self.is_float and self.name != "bool"

    @property
    def is_bool(self) -> bool:
        return self.name == "bool"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType({self.name})"

    def __str__(self) -> str:
        return self.name


F32 = DType("float", np.dtype(np.float32), True, True, 80)
F64 = DType("double", np.dtype(np.float64), True, True, 90)
I8 = DType("char", np.dtype(np.int8), False, True, 10)
U8 = DType("uchar", np.dtype(np.uint8), False, False, 11)
I32 = DType("int", np.dtype(np.int32), False, True, 30)
U32 = DType("uint", np.dtype(np.uint32), False, False, 31)
I64 = DType("long", np.dtype(np.int64), False, True, 50)
U64 = DType("ulong", np.dtype(np.uint64), False, False, 51)
BOOL = DType("bool", np.dtype(np.bool_), False, False, 0)

ALL_TYPES = (BOOL, I8, U8, I32, U32, I64, U64, F32, F64)

_BY_NP = {t.np_dtype: t for t in ALL_TYPES}


def from_numpy(dt: Union[np.dtype, type]) -> DType:
    """Map a numpy dtype to the IR type; raises ``TypeError`` if unsupported."""
    dt = np.dtype(dt)
    try:
        return _BY_NP[dt]
    except KeyError:
        raise TypeError(f"unsupported numpy dtype for kernel IR: {dt}") from None


def promote(a: DType, b: DType) -> DType:
    """Binary arithmetic promotion.

    Floats dominate integers; otherwise the higher-rank type wins.  This is a
    deliberately simple lattice (the kernels in the paper never rely on C's
    subtler conversion rules).
    """
    if a is b:
        return a
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.rank >= b.rank else b
        return a if a.is_float else b
    return a if a.rank >= b.rank else b


def common_type(*dts: DType) -> DType:
    """Fold :func:`promote` over one or more types."""
    if not dts:
        raise ValueError("common_type() needs at least one type")
    out = dts[0]
    for d in dts[1:]:
        out = promote(out, d)
    return out


def dtype_of_value(v) -> DType:
    """Infer the IR type of a Python/numpy scalar constant."""
    if isinstance(v, (bool, np.bool_)):
        return BOOL
    if isinstance(v, (int, np.integer)):
        return I64 if isinstance(v, (int, np.integer)) else I32
    if isinstance(v, (float, np.floating)):
        return F64 if isinstance(v, (float, np.float64)) else F32
    raise TypeError(f"cannot infer IR dtype of {v!r}")
