"""Tests for ``global_work_offset`` (clEnqueueNDRangeKernel's offset arg)."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter, KernelExecutionError
from repro.kernelir.types import F32, I64


def id_kernel():
    kb = KernelBuilder("ids")
    o = kb.buffer("o", I64, access="w")
    g = kb.global_id(0)
    o[g] = g
    return kb.finish()


class TestInterpreterOffset:
    def test_global_ids_shifted(self):
        o = np.zeros(16, np.int64)
        Interpreter().launch(
            id_kernel(), 8, 4, buffers={"o": o}, global_offset=(8,)
        )
        np.testing.assert_array_equal(o[8:], np.arange(8, 16))
        assert (o[:8] == 0).all()

    def test_local_and_group_ids_unshifted(self):
        kb = KernelBuilder("lg")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        o[g] = kb.group_id(0) * 100 + kb.local_id(0)
        o_arr = np.zeros(12, np.int64)
        Interpreter().launch(
            kb.finish(), 8, 4, buffers={"o": o_arr}, global_offset=(4,)
        )
        np.testing.assert_array_equal(o_arr[4:], [0, 1, 2, 3, 100, 101, 102, 103])

    def test_bad_offsets_rejected(self):
        o = np.zeros(8, np.int64)
        with pytest.raises(KernelExecutionError, match="rank"):
            Interpreter().launch(
                id_kernel(), 4, buffers={"o": o}, global_offset=(1, 2)
            )
        with pytest.raises(KernelExecutionError, match="non-negative"):
            Interpreter().launch(
                id_kernel(), 4, buffers={"o": o}, global_offset=(-1,)
            )


class TestQueueOffset:
    def test_tiled_launches_cover_buffer(self):
        """Two half-range launches with offsets == one full launch."""
        ctx = cl.Context(cl.cpu_platform().devices)
        q = ctx.create_command_queue()
        n = 256
        b = ctx.create_buffer(cl.mem_flags.WRITE_ONLY, size=8 * n, dtype=np.int64)
        k = ctx.create_program(id_kernel()).create_kernel("ids")
        k.set_args(b)
        q.enqueue_nd_range_kernel(k, (n // 2,), (64,))
        ev = q.enqueue_nd_range_kernel(
            k, (n // 2,), (64,), global_work_offset=(n // 2,)
        )
        np.testing.assert_array_equal(b.array, np.arange(n))
        assert ev.info["global_work_offset"] == (n // 2,)
