"""The HTTP transport of the experiment service (stdlib-only).

One :class:`ExperimentHTTPServer` (a ``ThreadingHTTPServer``) fronts one
:class:`~repro.serve.service.ExperimentService`.  The thread-per-request
model fits the service's blocking ``submit()``: a handler thread parks on
the job's completion event while the service's own worker pool (sized by
``REPRO_SERVE_WORKERS``) does the bounded amount of actual execution, and
followers of a deduped request park without consuming any worker at all.

Endpoints:

``POST /v1/submit``
    Body: one request document (see :mod:`repro.serve.protocol`).
    200 with the response envelope on success; 400 malformed request,
    429 + ``Retry-After`` on backpressure, 503 while shutting down,
    500 if execution itself raised.

``GET /healthz``
    Liveness + queue depth + cumulative stats (the ops poll target).

``GET /v1/metrics``
    Full metrics snapshot: serve counters, cache families, JIT and disk
    cache activity, per-tenant latency histograms.

Every response body is JSON (``Content-Type: application/json``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .protocol import RequestError
from .service import (
    BackpressureError,
    ExecutionError,
    ExperimentService,
    ServeConfig,
    ServiceClosedError,
)

__all__ = ["ExperimentHTTPServer", "start_server"]

#: request bodies above this are rejected outright (64 KiB is ~100x the
#: largest legitimate request document)
MAX_BODY_BYTES = 64 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ExperimentHTTPServer"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - silence per-request log
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _reply(self, status: int, doc: dict,
               headers: Optional[dict] = None) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, kind: str, message: str,
               headers: Optional[dict] = None) -> None:
        self._reply(status, {"ok": False, "error": kind, "message": message},
                    headers)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, self.server.service.health())
        elif self.path == "/v1/metrics":
            self._reply(200, self.server.service.metrics_snapshot())
        else:
            self._error(404, "not_found", f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/submit":
            self._error(404, "not_found", f"no route for POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._error(413, "too_large",
                        f"body must be 0..{MAX_BODY_BYTES} bytes")
            return
        try:
            doc = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as e:
            self._error(400, "bad_json", f"request body is not JSON: {e}")
            return
        try:
            self._reply(200, self.server.service.submit(doc))
        except RequestError as e:
            self._error(400, "bad_request", str(e))
        except BackpressureError as e:
            self._error(
                429, "backpressure", str(e),
                {"Retry-After": f"{e.retry_after_s:.2f}"},
            )
        except ServiceClosedError as e:
            self._error(503, "closing", str(e))
        except ExecutionError as e:
            self._error(500, "execution", str(e))


class ExperimentHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True

    def __init__(self, addr: Tuple[str, int],
                 service: Optional[ExperimentService] = None,
                 config: Optional[ServeConfig] = None,
                 verbose: bool = False):
        self.service = service or ExperimentService(config)
        self.verbose = verbose
        super().__init__(addr, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop accepting connections, then drain the service."""
        self.shutdown()
        self.server_close()
        self.service.close()


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServeConfig] = None,
    verbose: bool = False,
) -> Tuple[ExperimentHTTPServer, threading.Thread]:
    """Bind, start serving on a daemon thread, return (server, thread).

    ``port=0`` picks a free port (the tests' mode); the chosen address is
    ``server.server_address``.  The caller owns shutdown via
    :meth:`ExperimentHTTPServer.close`.
    """
    server = ExperimentHTTPServer((host, port), config=config,
                                  verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread
