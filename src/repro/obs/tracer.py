"""Structured tracing on two clocks: virtual device time and wall clock.

The simulator's results live on *virtual* nanoseconds (every
:class:`~repro.minicl.event.Event` carries QUEUED/SUBMIT/START/END device
timestamps), while the harness, the kernel JIT and the plan caches spend
*host* wall-clock time.  A :class:`Tracer` records both kinds of activity
as Chrome-Trace-style event dicts:

* **command spans** — one slice per enqueued command on its queue's track,
  with cost-component sub-spans (schedule/execute for kernels, API
  overhead vs. data movement for transfers) and synthesized per-core /
  per-SM lanes reconstructed from the device model's ``KernelCost``
  diagnostics;
* **wall spans** — self-profiling of the host-side machinery (experiment
  runs, JIT compiles, plan-cache misses) on a dedicated host process
  track;
* **instants and counters** — point events and numeric series.

Clock domains never mix on one track: every queue gets its own pid whose
timeline is that queue's virtual clock, and all wall-clock activity lives
on the reserved host pid.  Trace-event ``ts`` values are microseconds (the
Chrome trace unit); virtual nanoseconds are divided by 1000 on emission
and preserved exactly in span ``args``.

Tracing is strictly opt-in.  The module-level :data:`ACTIVE` tracer is
``None`` by default and every instrumentation site guards on that, so the
disabled path costs one module-attribute load per command.  Install a
tracer with :func:`install` / the :func:`tracing` context manager, or via
``--trace`` on the CLI (env: ``REPRO_TRACE``).  Recording never perturbs
virtual time: the tracer only *reads* completed events, which is what
keeps ``results/*.csv`` byte-identical with tracing on or off.
"""

from __future__ import annotations

import contextlib
import math
import threading
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ACTIVE",
    "Tracer",
    "current",
    "install",
    "tracing",
    "uninstall",
]

#: the host (wall-clock) process id; queues start above it
HOST_PID = 1
_FIRST_QUEUE_PID = 100

#: host-pid thread ids per category (stable, documented in OBSERVABILITY.md)
_HOST_TIDS = {
    "harness": 1,
    "jit": 2,
    "model": 3,
    "cache": 4,
    "host": 9,
}

#: host-pid thread ids for engine worker threads (one lane per thread,
#: allocated on first use; stays clear of the category tids above)
_WORKER_TID_BASE = 100

#: queue-pid thread ids: command slots from 1, per-core/per-SM lanes high
_COMMANDS_TID = 1
_FIRST_LANE_TID = 1000


class Tracer:
    """Collects trace events; export lives in :mod:`repro.obs.export`.

    The tracer is deliberately dumb storage plus decomposition logic —
    it owns no I/O and no global state, so tests can drive it directly.
    """

    def __init__(self, *, wall_clock=time.perf_counter_ns):
        self._wall_clock = wall_clock
        self._wall_t0 = wall_clock()
        self.events: List[dict] = []
        #: queue object id -> assigned pid.  The queue objects themselves
        #: are pinned in ``_queue_refs`` for the tracer's lifetime: CPython
        #: recycles ``id()`` values after collection, and a recycled id
        #: would splice a fresh queue (virtual clock back at 0) onto a dead
        #: queue's timeline, sending its track backwards.
        self._queue_pids: Dict[int, int] = {}
        self._queue_refs: List[object] = []
        self._next_pid = _FIRST_QUEUE_PID
        #: (pid, tid) pairs whose thread_name metadata was emitted
        self._named_tracks: set = set()
        #: per queue pid: last occupied timestamp (ns) per command slot —
        #: out-of-order queues overlap commands, which a single B/E track
        #: cannot render, so overlapping commands spill to further slots
        self._slots: Dict[int, List[float]] = {}
        #: thread ident -> host-pid tid for engine worker lanes.  Keyed by
        #: thread (not worker index): the command pool and the chunk pool
        #: both number workers from 0, and a Chrome-trace track only stays
        #: well-nested and monotonic if a single thread owns it.
        self._worker_tids: Dict[int, int] = {}
        self._worker_lock = threading.Lock()
        self.dropped = 0

    # -- clocks ---------------------------------------------------------------
    def wall_us(self) -> float:
        """Wall-clock microseconds since the tracer was created."""
        return (self._wall_clock() - self._wall_t0) / 1000.0

    # -- low-level emission ----------------------------------------------------
    def _emit(self, ph: str, name: str, cat: str, ts: float, pid: int,
              tid: int, *, args: Optional[dict] = None, **extra) -> None:
        ev = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": round(ts, 3),
            "pid": pid,
            "tid": tid,
        }
        if args:
            ev["args"] = args
        ev.update(extra)
        self.events.append(ev)

    def _metadata(self, pid: int, tid: Optional[int], name: str) -> None:
        if tid is None:
            self._emit("M", "process_name", "__metadata", 0.0, pid, 0,
                       args={"name": name})
        else:
            self._emit("M", "thread_name", "__metadata", 0.0, pid, tid,
                       args={"name": name})

    def _lane(self, pid: int, tid: int, label: str) -> int:
        if (pid, tid) not in self._named_tracks:
            self._named_tracks.add((pid, tid))
            self._metadata(pid, tid, label)
        return tid

    # -- host-side spans/instants/counters -------------------------------------
    @contextlib.contextmanager
    def wall_span(self, name: str, cat: str = "host",
                  args: Optional[dict] = None) -> Iterator[None]:
        """Wall-clock B/E span on the host pid (category picks the track)."""
        tid = _HOST_TIDS.get(cat, _HOST_TIDS["host"])
        self._lane(HOST_PID, tid, cat)
        if (HOST_PID, None) not in self._named_tracks:
            self._named_tracks.add((HOST_PID, None))
            self._metadata(HOST_PID, None, "host (wall clock)")
        self._emit("B", name, cat, self.wall_us(), HOST_PID, tid, args=args)
        try:
            yield
        finally:
            self._emit("E", name, cat, self.wall_us(), HOST_PID, tid)

    @contextlib.contextmanager
    def worker_span(self, worker_idx: int, name: str,
                    args: Optional[dict] = None) -> Iterator[None]:
        """Wall-clock B/E span on this engine worker thread's own lane.

        Used by the DAG scheduler and the chunked kernel executor, whose
        work runs concurrently: each pool thread gets a dedicated host-pid
        track so overlapping spans never share a (pid, tid) pair.
        """
        ident = threading.get_ident()
        with self._worker_lock:
            tid = self._worker_tids.get(ident)
            if tid is None:
                tid = _WORKER_TID_BASE + len(self._worker_tids)
                self._worker_tids[ident] = tid
                self._named_tracks.add((HOST_PID, tid))
                self._metadata(HOST_PID, tid, f"engine worker {worker_idx}")
            if (HOST_PID, None) not in self._named_tracks:
                self._named_tracks.add((HOST_PID, None))
                self._metadata(HOST_PID, None, "host (wall clock)")
        self._emit("B", name, "engine", self.wall_us(), HOST_PID, tid,
                   args=args)
        try:
            yield
        finally:
            self._emit("E", name, "engine", self.wall_us(), HOST_PID, tid)

    def instant(self, name: str, cat: str = "host",
                args: Optional[dict] = None) -> None:
        tid = _HOST_TIDS.get(cat, _HOST_TIDS["host"])
        self._lane(HOST_PID, tid, cat)
        self._emit("i", name, cat, self.wall_us(), HOST_PID, tid,
                   args=args, s="t")

    def counter(self, name: str, values: Dict[str, float],
                cat: str = "metrics") -> None:
        """One sample of a numeric series (Chrome ``C`` event, host clock)."""
        self._emit("C", name, cat, self.wall_us(), HOST_PID,
                   _HOST_TIDS["host"], args={k: float(v)
                                             for k, v in values.items()})

    # -- command recording ------------------------------------------------------
    def _queue_pid(self, queue) -> int:
        pid = self._queue_pids.get(id(queue))
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
            self._queue_pids[id(queue)] = pid
            self._queue_refs.append(queue)
            mode = "out-of-order" if getattr(queue, "out_of_order", False) \
                else "in-order"
            self._metadata(
                pid, None,
                f"queue #{pid - _FIRST_QUEUE_PID} on {queue.device.name} "
                f"({mode}, virtual ns)",
            )
            self._lane(pid, _COMMANDS_TID, "commands")
        return pid

    def _slot_tid(self, pid: int, first_ns: float, end_ns: float) -> int:
        """First command slot free at ``first_ns`` (greedy lane packing)."""
        slots = self._slots.setdefault(pid, [])
        for i, last in enumerate(slots):
            if first_ns >= last:
                slots[i] = end_ns
                return _COMMANDS_TID + i
        slots.append(end_ns)
        i = len(slots) - 1
        tid = _COMMANDS_TID + i
        if i > 0:
            self._lane(pid, tid, f"commands (overlap {i + 1})")
        return tid

    def record_command(self, queue, event) -> None:
        """Record one completed minicl command (called from the queue).

        Reads only the event's profile and ``info`` — never writes queue
        or device state, so recording cannot perturb virtual time.
        """
        try:
            self._record_command(queue, event)
        except Exception:
            # Telemetry must never take down a run; count and move on.
            self.dropped += 1

    def _record_command(self, queue, event) -> None:
        pid = self._queue_pid(queue)
        p = event.profile
        info = event.info or {}
        name = info.get("kernel") or event.command_type.value
        args = {
            "command": event.command_type.value,
            "queued_ns": p.queued,
            "submit_ns": p.submit,
            "start_ns": p.start,
            "end_ns": p.end,
        }
        cost = info.get("cost")
        if "global_size" in info:
            args["global_size"] = list(info["global_size"])
            ls = info.get("local_size")
            args["local_size"] = list(ls) if ls is not None else None
        if "bytes" in info:
            args["bytes"] = info["bytes"]
        if "placement" in info:  # cl_repro_workgroup_affinity launches
            args["extension"] = info.get("extension")

        ts0, ts1 = p.start / 1000.0, p.end / 1000.0
        tid = self._slot_tid(pid, min(p.queued, p.start), p.end)
        # the QUEUED->SUBMIT and SUBMIT->START phases, when they exist,
        # become their own slices so Perfetto shows where a command waited
        if p.submit > p.queued:
            self._emit("B", f"{name} [queued]", "phase", p.queued / 1000.0,
                       pid, tid)
            self._emit("E", f"{name} [queued]", "phase", p.submit / 1000.0,
                       pid, tid)
        if p.start > p.submit:
            self._emit("B", f"{name} [submitted]", "phase",
                       p.submit / 1000.0, pid, tid)
            self._emit("E", f"{name} [submitted]", "phase",
                       p.start / 1000.0, pid, tid)

        self._emit("B", name, "command", ts0, pid, tid, args=args)
        # per-core/per-SM lanes share one timeline per queue, which only
        # stays monotonic when commands never overlap (in-order queues)
        lanes = not getattr(queue, "out_of_order", False)
        if cost is not None and hasattr(cost, "schedule"):
            self._cpu_kernel_subspans(queue, pid, tid, p, cost, lanes)
        elif cost is not None and hasattr(cost, "sm_cost"):
            self._gpu_kernel_subspans(queue, pid, tid, p, cost, lanes)
        elif cost is not None and hasattr(cost, "api"):
            self._transfer_subspans(queue, pid, tid, p, cost)
        elif "schedule" in info:  # affinity-extension launch: no KernelCost
            if lanes:
                self._ext_kernel_subspans(queue, pid, p, info["schedule"],
                                          info.get("placement") or ())
        self._emit("E", name, "command", ts1, pid, tid)

    # -- cost-component decomposition -------------------------------------------
    def _nested(self, pid: int, tid: int, t0: float, parts) -> None:
        """Emit consecutive (name, cat, dur_ns, args) slices from ``t0``."""
        t = t0
        for name, cat, dur_ns, args in parts:
            if dur_ns <= 0:
                continue
            self._emit("B", name, cat, t / 1000.0, pid, tid, args=args)
            t += dur_ns
            self._emit("E", name, cat, t / 1000.0, pid, tid)

    def _cpu_kernel_subspans(self, queue, pid, tid, profile, cost,
                             lanes) -> None:
        """schedule/execute split plus per-core lanes from a KernelCost."""
        spec = queue.device.model.spec
        total = profile.end - profile.start
        sched = cost.schedule
        threads = max(1, sched.threads_used)
        dispatch_ns = spec.cycles_to_ns(sched.dispatch_cycles_total / threads)
        sched_ns = min(total, spec.kernel_launch_overhead_ns + dispatch_ns)
        exec_ns = total - sched_ns
        item = cost.item
        self._nested(pid, tid, profile.start, [
            ("schedule", "cost.schedule", sched_ns, {
                "launch_overhead_ns": spec.kernel_launch_overhead_ns,
                "dispatch_ns": dispatch_ns,
                "workgroups": cost.analysis.ctx.workgroup_count,
                "rounds": sched.rounds,
                "threads_used": sched.threads_used,
            }),
            ("execute", "cost.execute", exec_ns, {
                "dominant_bound": item.dominant(),
                "compute_bound_cycles": item.compute_bound,
                "memory_bound_cycles": item.memory_bound,
                "bandwidth_bound_cycles": item.bandwidth_bound,
                "latency_bound_cycles": item.latency_bound,
                "effective_vector_width": item.effective_vector_width,
                "vectorized": cost.vectorization.vectorized,
                "gflops": round(cost.gflops, 4),
            }),
        ])
        if not lanes:
            return
        busy_ns = min(exec_ns, spec.cycles_to_ns(
            sched.busy_cycles_total / threads))
        t0 = profile.start + sched_ns
        for core in range(sched.threads_used):
            lane = self._lane(pid, _FIRST_LANE_TID + core, f"core {core}")
            self._nested(pid, lane, t0, [
                (f"{sched.rounds} workgroup round(s)", "cost.core", busy_ns,
                 None),
            ])

    def _ext_kernel_subspans(self, queue, pid, profile, sched,
                             placement) -> None:
        """Per-core lanes for an affinity-extension launch (ScheduleResult
        only — the extension path computes costs outside KernelCost)."""
        spec = queue.device.model.spec
        total = profile.end - profile.start
        threads = max(1, sched.threads_used)
        busy_ns = min(total, spec.cycles_to_ns(sched.busy_cycles_total
                                               / threads))
        cores = sorted(set(placement)) or list(range(threads))
        for core in cores[:spec.logical_cores]:
            lane = self._lane(pid, _FIRST_LANE_TID + core, f"core {core}")
            wgs = sum(1 for c in placement if c == core)
            self._nested(pid, lane, profile.start, [
                (f"{wgs or '?'} pinned workgroup(s)", "cost.core", busy_ns,
                 None),
            ])

    def _gpu_kernel_subspans(self, queue, pid, tid, profile, cost,
                             lanes) -> None:
        """schedule/execute split plus per-SM lanes from a GPUKernelCost."""
        spec = queue.device.model.spec
        total = profile.end - profile.start
        wgs = cost.analysis.ctx.workgroup_count
        sched_ns = min(total, spec.kernel_launch_overhead_ns
                       + wgs * spec.workgroup_dispatch_ns / spec.num_sms)
        exec_ns = total - sched_ns
        smc = cost.sm_cost
        self._nested(pid, tid, profile.start, [
            ("schedule", "cost.schedule", sched_ns, {
                "launch_overhead_ns": spec.kernel_launch_overhead_ns,
                "workgroups": wgs,
                "waves": cost.waves,
            }),
            ("execute", "cost.execute", exec_ns, {
                "occupancy": round(cost.occupancy.occupancy, 4),
                "workgroups_per_sm": cost.occupancy.workgroups_per_sm,
                "compute_cycles_per_wg": smc.compute_cycles,
                "memory_cycles_per_wg": smc.memory_cycles,
                "latency_hiding": smc.latency_hiding,
                "divergence_penalty": smc.divergence_penalty,
                "gflops": round(cost.gflops, 4),
            }),
        ])
        if not lanes:
            return
        sms_busy = min(spec.num_sms,
                       math.ceil(wgs / max(1, cost.occupancy.workgroups_per_sm)))
        t0 = profile.start + sched_ns
        wgs_per_sm = math.ceil(wgs / max(1, sms_busy))
        for sm in range(sms_busy):
            lane = self._lane(pid, _FIRST_LANE_TID + sm, f"sm {sm}")
            self._nested(pid, lane, t0, [
                (f"{wgs_per_sm} workgroup(s)", "cost.sm", exec_ns, None),
            ])

    def _transfer_subspans(self, queue, pid, tid, profile, cost) -> None:
        """API-overhead vs data-movement split from a TransferCost."""
        spec = queue.device.model.spec
        total = profile.end - profile.start
        if cost.api == "copy":
            overhead = getattr(spec, "copy_api_overhead_ns",
                               getattr(spec, "pcie_latency_ns", 0.0))
        else:
            overhead = getattr(spec, "map_api_overhead_ns",
                               getattr(spec, "pcie_latency_ns", 0.0))
        overhead = min(total, overhead)
        move_ns = total - overhead
        what = "dma" if queue.device.is_gpu else \
            ("memcpy" if cost.api == "copy" else "page tables")
        self._nested(pid, tid, profile.start, [
            ("api overhead", "cost.transfer", overhead, None),
            (what, "cost.transfer", move_ns, {
                "nbytes": cost.nbytes,
                "moved_bytes": cost.moved_bytes,
            }),
        ])


# ---------------------------------------------------------------------------
# The process-wide active tracer.  ``None`` means tracing is off and every
# instrumentation site short-circuits on one attribute load.
# ---------------------------------------------------------------------------

ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process-wide active tracer."""
    global ACTIVE
    ACTIVE = tracer if tracer is not None else Tracer()
    return ACTIVE


def uninstall() -> Optional[Tracer]:
    """Stop tracing; returns the tracer that was active (if any)."""
    global ACTIVE
    t, ACTIVE = ACTIVE, None
    return t


def current() -> Optional[Tracer]:
    return ACTIVE


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Run a block with tracing active; restores the previous tracer."""
    global ACTIVE
    prev = ACTIVE
    t = install(tracer)
    try:
        yield t
    finally:
        ACTIVE = prev
