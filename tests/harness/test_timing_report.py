"""Unit tests for the timing methodology and result reporting."""

import pytest

from repro.harness.report import ExperimentResult, Series
from repro.harness.timing import Measurement, repeat_to_target
from repro.minicl.constants import command_type
from repro.minicl.event import Event


def _event(duration):
    return Event(command_type.MARKER, 0.0, 0.0, duration)


class TestRepeatToTarget:
    def test_stops_at_target(self):
        calls = []

        def enqueue():
            calls.append(1)
            return _event(40e9)  # 40 virtual seconds each

        m = repeat_to_target(enqueue, target_seconds=90, max_invocations=10)
        assert m.invocations == 3  # 40+40+40 >= 90
        assert m.mean_ns == pytest.approx(40e9)

    def test_caps_invocations(self):
        m = repeat_to_target(lambda: _event(1.0), max_invocations=5)
        assert m.invocations == 5

    def test_min_invocations(self):
        m = repeat_to_target(
            lambda: _event(1e12), max_invocations=4, min_invocations=2
        )
        assert m.invocations >= 2

    def test_zero_duration_breaks(self):
        m = repeat_to_target(lambda: _event(0.0), max_invocations=10)
        assert m.invocations == 1

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            repeat_to_target(lambda: _event(1), max_invocations=1, min_invocations=2)

    def test_throughput(self):
        m = Measurement(mean_ns=100.0, invocations=1, total_virtual_ns=100.0)
        assert m.throughput(1000.0) == 10.0
        assert m.mean_ms == pytest.approx(1e-4)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            "figX",
            "demo",
            [
                Series("cpu", {"a": 1.0, "b": 2.0}),
                Series("gpu", {"a": 0.5}),
            ],
        )

    def test_x_labels_union_in_order(self):
        assert self.make().x_labels == ["a", "b"]

    def test_get_series(self):
        r = self.make()
        assert r.get("cpu").value("b") == 2.0
        with pytest.raises(KeyError):
            r.get("tpu")

    def test_render_contains_values_and_gaps(self):
        text = self.make().render()
        assert "figX" in text and "cpu" in text
        assert "-" in text  # missing gpu/b slot

    def test_csv(self):
        csv = self.make().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "series,a,b"
        assert lines[2].startswith("gpu,0.5,")

    def test_notes_rendered(self):
        r = self.make()
        r.notes.append("hello world")
        assert "note: hello world" in r.render()
