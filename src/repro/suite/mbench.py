"""MBench1-8 — the vectorization micro-benchmarks of Figure 10.

Each benchmark exists once as kernel IR; the OpenCL side runs it through the
minicl CPU device (implicit cross-workitem vectorization) and the "OpenMP
port" hands the *same* IR to :class:`repro.openmp.OpenMPRuntime`, whose loop
auto-vectorizer applies the classic legality rules.  The family spans the
patterns Section III-F discusses:

===========  ============================================  =================
benchmark    pattern                                        expected outcome
===========  ============================================  =================
MBench1      chained triad (16 dependent mads)              only OpenCL
MBench2      iterated saxpy recurrence                      only OpenCL
MBench3      Figure 11's dependent-FMUL loop                only OpenCL
MBench4      non-unit-stride access                         only OpenCL
MBench5      indirect (gather) access                       only OpenCL
MBench6      transcendental dependence chain                only OpenCL
MBench7      runtime-offset potential aliasing              only OpenCL
MBench8      Horner polynomial (chained mads)               only OpenCL
===========  ============================================  =================

Matching the paper ("For the evaluated benchmarks, the OpenCL kernels
outperform their OpenMP counterparts"), every member contains a pattern the
loop vectorizer rejects while the cross-workitem packer does not.  The
`both vectorize` parity cases (plain vadd/saxpy) live in the unit tests of
:mod:`repro.kernelir.vectorize` instead.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..kernelir.ast import Kernel
from ..kernelir.builder import KernelBuilder
from ..kernelir.types import F32, I32
from .base import Benchmark

__all__ = ["MBench", "MBENCHES", "mbench_by_name"]


class MBench(Benchmark):
    """A vectorization micro-benchmark (see module table)."""

    work_dim = 1
    default_local_size = (256,)
    supports_coalescing = False

    def __init__(
        self,
        name: str,
        build: Callable[[], Kernel],
        make_data: Callable[[int, np.random.Generator], Tuple[dict, dict]],
        reference: Callable[[dict, dict], Dict[str, np.ndarray]],
        flops_per_item: float,
        n: int = 1 << 20,
        omp_should_vectorize: bool = False,
    ):
        self.name = name
        self._build = build
        self._make_data = make_data
        self._reference = reference
        self.flops_per_item = flops_per_item
        self.default_global_sizes = ((n,),)
        #: ground truth for the vectorizer tests
        self.omp_should_vectorize = omp_should_vectorize

    def cache_token(self):
        # instances are built from free functions; two MBenches with the
        # same display name but different builders must not share plans
        return (self._build.__module__, self._build.__qualname__)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("MBench kernels do not support coalescing")
        return self._build()

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        return self._make_data(int(global_size[0]), rng)

    def reference(self, buffers, scalars, global_size):
        return self._reference(buffers, scalars)


# -- builders ---------------------------------------------------------------


def _b1_chained_triad() -> Kernel:
    """Sixteen dependent mads per element: t = t*b + a, chained."""
    kb = KernelBuilder("mbench1_triadchain")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    av = kb.let("av", a[g])
    bv = kb.let("bv", b[g])
    t = kb.let("t", av + bv)
    for _ in range(16):
        t = kb.let("t", kb.mad(t, bv, av))
    c[g] = t
    return kb.finish()


def _b2_saxpy_iter() -> Kernel:
    """Iterated saxpy recurrence: y = alpha*y + x, sixteen rounds."""
    kb = KernelBuilder("mbench2_saxpyiter")
    x = kb.buffer("x", F32, access="r")
    y = kb.buffer("y", F32)
    alpha = kb.scalar("alpha", F32)
    g = kb.global_id(0)
    xv = kb.let("xv", x[g])
    yv = kb.let("yv", y[g])
    for _ in range(16):
        yv = kb.let("yv", kb.mad(alpha, yv, xv))
    y[g] = yv
    return kb.finish()


def _b3_fmul_chain() -> Kernel:
    """Figure 11: a j-loop whose body is six truly dependent FMULs."""
    kb = KernelBuilder("mbench3_fmulchain")
    a = kb.buffer("a", F32)
    b = kb.buffer("b", F32, access="r")
    g = kb.global_id(0)
    acc = kb.let("acc", a[g])
    v = kb.let("v", b[g])
    with kb.loop("j", 0, 4):
        for _ in range(6):
            acc = kb.let("acc", acc * v)
    a[g] = acc
    return kb.finish()


def _chain_tail(kb: KernelBuilder, v, rounds: int = 16):
    """A compute tail of ``rounds`` chained mads (keeps the benchmark
    compute-bound so the vectorization outcome, not memory bandwidth,
    decides the Figure 10 comparison)."""
    t = kb.let("t", v)
    for _ in range(rounds):
        t = kb.let("t", kb.mad(t, kb.f32(0.98), kb.f32(0.02)))
    return t


def _tail_reference(v: np.ndarray, rounds: int = 16) -> np.ndarray:
    t = v.astype(np.float32)
    for _ in range(rounds):
        t = (t * np.float32(0.98) + np.float32(0.02)).astype(np.float32)
    return t


def _b4_strided() -> Kernel:
    kb = KernelBuilder("mbench4_strided")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    v = kb.let("v", a[g * 2] * b[g * 2])
    c[g] = _chain_tail(kb, v)
    return kb.finish()


def _b5_gather() -> Kernel:
    kb = KernelBuilder("mbench5_gather")
    a = kb.buffer("a", F32, access="r")
    idx = kb.buffer("idx", I32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    v = kb.let("v", a[idx[g]] + kb.f32(1.0))
    c[g] = _chain_tail(kb, v)
    return kb.finish()


def _b6_transcendental() -> Kernel:
    kb = KernelBuilder("mbench6_transcendental")
    a = kb.buffer("a", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    t = kb.let("t", kb.exp(a[g] * kb.f32(0.1)))
    t = kb.let("t", kb.log(t + kb.f32(1.0)))
    t = kb.let("t", kb.sqrt(t * t + kb.f32(0.5)))
    t = kb.let("t", t * t + t)
    c[g] = t
    return kb.finish()


def _b7_runtime_offset() -> Kernel:
    """Write c[i], read c[i + off]; ``off`` is a runtime scalar, so a loop
    vectorizer must assume the iterations may alias."""
    kb = KernelBuilder("mbench7_offset")
    a = kb.buffer("a", F32, access="r")
    c = kb.buffer("c", F32)
    off = kb.scalar("off", I32)
    g = kb.global_id(0)
    v = kb.let("v", a[g] + c[g + off] * kb.f32(0.5))
    c[g] = _chain_tail(kb, v)
    return kb.finish()


def _b8_horner() -> Kernel:
    kb = KernelBuilder("mbench8_horner")
    x = kb.buffer("x", F32, access="r")
    c = kb.buffer("c", F32, access="w")
    g = kb.global_id(0)
    xv = kb.let("xv", x[g])
    acc = kb.let("acc", kb.f32(0.2))
    for coeff in _HORNER_COEFFS:
        acc = kb.let("acc", kb.mad(acc, xv, kb.f32(coeff)))
    c[g] = acc
    return kb.finish()


_HORNER_COEFFS = (
    0.5, -0.3, 0.7, -0.1, 0.9, 0.25, -0.45, 0.15,
    0.35, -0.05, 0.6, -0.2, 0.4, -0.35, 0.55, 0.1,
)


# -- data/reference pairs ------------------------------------------------------


def _d_two(n, rng):
    return (
        {
            "a": rng.random(n, dtype=np.float32),
            "b": rng.random(n, dtype=np.float32),
            "c": np.zeros(n, np.float32),
        },
        {},
    )


def _mk_benches() -> Tuple[MBench, ...]:
    benches = []

    def r1(bufs, sc):
        a = bufs["a"].astype(np.float32)
        b = bufs["b"].astype(np.float32)
        t = (a + b).astype(np.float32)
        for _ in range(16):
            t = (t * b + a).astype(np.float32)
        return {"c": t}

    benches.append(MBench(
        "MBench1", _b1_chained_triad, _d_two, r1, flops_per_item=33,
    ))

    def d2(n, rng):
        return (
            {"x": rng.random(n, dtype=np.float32),
             "y": rng.random(n, dtype=np.float32)},
            {"alpha": 0.75},
        )

    def r2(bufs, sc):
        al = np.float32(sc["alpha"])
        yv = bufs["y"].astype(np.float32)
        for _ in range(16):
            yv = (al * yv + bufs["x"]).astype(np.float32)
        return {"y": yv}

    benches.append(MBench(
        "MBench2", _b2_saxpy_iter, d2, r2, flops_per_item=32,
    ))

    def d3(n, rng):
        return (
            {"a": rng.random(n, dtype=np.float32),
             "b": (rng.random(n, dtype=np.float32) * 0.2 + 0.9)},
            {},
        )

    def r3(bufs, sc):
        acc = bufs["a"].copy()
        for _ in range(24):
            acc = (acc * bufs["b"]).astype(np.float32)
        return {"a": acc}

    benches.append(MBench("MBench3", _b3_fmul_chain, d3, r3, flops_per_item=24))

    def d4(n, rng):
        return (
            {"a": rng.random(2 * n, dtype=np.float32),
             "b": rng.random(2 * n, dtype=np.float32),
             "c": np.zeros(n, np.float32)},
            {},
        )

    benches.append(MBench(
        "MBench4", _b4_strided, d4,
        lambda bufs, sc: {
            "c": _tail_reference(bufs["a"][::2] * bufs["b"][::2])
        },
        flops_per_item=33,
    ))

    def d5(n, rng):
        return (
            {"a": rng.random(n, dtype=np.float32),
             "idx": rng.integers(0, n, n, dtype=np.int32),
             "c": np.zeros(n, np.float32)},
            {},
        )

    benches.append(MBench(
        "MBench5", _b5_gather, d5,
        lambda bufs, sc: {
            "c": _tail_reference(bufs["a"][bufs["idx"]] + np.float32(1.0))
        },
        flops_per_item=33,
    ))

    def d6(n, rng):
        return (
            {"a": rng.random(n, dtype=np.float32),
             "c": np.zeros(n, np.float32)},
            {},
        )

    def r6(bufs, sc):
        t = np.exp(bufs["a"].astype(np.float64) * 0.1)
        t = np.log(t + 1.0)
        t = np.sqrt(t * t + 0.5)
        t = t * t + t
        return {"c": t.astype(np.float32)}

    benches.append(MBench("MBench6", _b6_transcendental, d6, r6, flops_per_item=9))

    def d7(n, rng):
        # c holds 2n entries; reads come from the disjoint upper half
        return (
            {"a": rng.random(n, dtype=np.float32),
             "c": rng.random(2 * n, dtype=np.float32)},
            {"off": n},
        )

    def r7(bufs, sc):
        n = len(bufs["a"])
        out = bufs["c"].copy()
        out[:n] = _tail_reference(
            bufs["a"] + bufs["c"][n:] * np.float32(0.5)
        )
        return {"c": out}

    benches.append(MBench("MBench7", _b7_runtime_offset, d7, r7, flops_per_item=34))

    def d8(n, rng):
        return (
            {"x": rng.random(n, dtype=np.float32),
             "c": np.zeros(n, np.float32)},
            {},
        )

    def r8(bufs, sc):
        x = bufs["x"].astype(np.float32)
        acc = np.full_like(x, np.float32(0.2))
        for coeff in _HORNER_COEFFS:
            acc = (acc * x + np.float32(coeff)).astype(np.float32)
        return {"c": acc}

    benches.append(MBench("MBench8", _b8_horner, d8, r8, flops_per_item=32))
    return tuple(benches)


#: the Figure 10 family, in paper order
MBENCHES: Tuple[MBench, ...] = _mk_benches()


def mbench_by_name(name: str) -> MBench:
    for b in MBENCHES:
        if b.name == name:
            return b
    raise KeyError(name)
