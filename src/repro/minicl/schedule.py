"""Event-DAG command scheduling: the queue's execution engine.

Real CPU OpenCL runtimes (pocl's task-graph scheduler is the canonical
design) do not execute commands inside ``clEnqueue*``: they append a node
to a dependency graph and retire ready nodes on a worker pool.  This
module is that engine for :class:`repro.minicl.queue.CommandQueue`.

Dependencies come from two sources:

* **explicit wait lists** — the events a command was enqueued with; and
* **implicit same-buffer hazards** — each command declares the buffers it
  reads and writes, and the scheduler infers RAW (read after write), WAR
  (write after read) and WAW (write after write) edges from a per-buffer
  last-writer / readers-since-last-write table, exactly the ordering an
  in-order queue provides for free.

Because every pair of commands that touch overlapping state is ordered by
a hazard edge, retiring nodes concurrently on the pool is *functionally*
indistinguishable from eager in-order execution — which is what keeps
``results/*.csv`` byte-identical across ``{inorder, ooo} x {1, 4}``
workers.  Virtual profiling timestamps never consult this graph: they are
computed at enqueue from the explicit wait list alone (see
``CommandQueue._complete``), so simulated device time is engine- and
worker-count-independent by construction.

Determinism guarantees (see ``docs/SCHEDULER.md``):

* functional buffer state after ``drain()`` equals eager in-order state;
* a failing command's exception is re-raised at the *first* drain point,
  and when several nodes fail the lowest node id (= enqueue order) wins;
* ``count_ops`` counters and verifier/JIT stats reduce deterministically.

Submission mirrors ``clFlush``/``clFinish``: ``add`` only records the
node, :meth:`CommandScheduler.flush` releases recorded nodes to the pool
without blocking, and :meth:`CommandScheduler.drain` flushes and waits
(raising deferred errors).  A wait-list cycle — impossible through the
public queue API but constructible through this class — is detected at
drain time and raises :class:`~repro.minicl.errors.InvalidOperation`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence

from .. import workers
from ..obs import tracer as obs_tracer
from .errors import InvalidOperation

__all__ = ["CommandNode", "CommandScheduler", "scheduler_stats",
           "reset_scheduler_stats"]

#: process-wide counters (survive scheduler instance turnover), reported by
#: ``python -m repro bench`` and absorbed into the metrics registry
_STATS = {
    "nodes": 0,
    "hazard_edges": 0,
    "explicit_edges": 0,
    "barrier_edges": 0,
    "executed": 0,
    "drains": 0,
    "max_in_flight": 0,
    "kernel_nodes": 0,
    "kernel_nodes_chunk_eligible": 0,
    "fused_launches": 0,
}


def _fusion_enabled() -> bool:
    """Cross-launch fusion kill switch (``REPRO_NO_FUSE=1`` disables)."""
    import repro

    return not repro.env_flag("REPRO_NO_FUSE")


def scheduler_stats() -> Dict[str, int]:
    """Snapshot of process-wide DAG-engine activity.

    ``chunk_eligible_fraction`` is the share of NDRange nodes whose launch
    the shared dataflow analysis proved safe to split across the worker
    pool (see :func:`repro.kernelir.dataflow.chunk_safety`) — the paper's
    multi-core scaling only applies to that fraction of the suite.
    """
    out = dict(_STATS)
    n = out["kernel_nodes"]
    out["chunk_eligible_fraction"] = (
        round(out["kernel_nodes_chunk_eligible"] / n, 4) if n else 0.0
    )
    return out


def reset_scheduler_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def note_kernel_launch(chunk_eligible: bool) -> None:
    """Record one NDRange enqueue and its chunk-safety verdict (called by
    :meth:`repro.minicl.queue.CommandQueue.enqueue_nd_range_kernel`)."""
    _STATS["kernel_nodes"] += 1
    if chunk_eligible:
        _STATS["kernel_nodes_chunk_eligible"] += 1


# node lifecycle: recorded -> released -> submitted -> running -> done
_RECORDED, _RELEASED, _SUBMITTED, _RUNNING, _DONE = range(5)


class CommandNode:
    """One enqueued command in the dependency graph."""

    __slots__ = ("nid", "action", "event", "deps", "dependents", "state",
                 "error", "label", "scheduler", "pins", "kernel_info",
                 "fused_into")

    def __init__(self, nid, action, event, label, scheduler, pins=(),
                 kernel_info=None):
        self.nid = nid
        self.action = action          # callable doing the functional work
        self.event = event            # minicl Event this node retires
        self.deps: set = set()        # unfinished upstream nodes
        self.dependents: List["CommandNode"] = []
        self.state = _RECORDED
        self.error: Optional[BaseException] = None
        self.label = label
        self.scheduler = scheduler
        #: objects kept alive while the node is pending — hazard tracking
        #: keys on ``id(buffer)``, which CPython recycles after collection
        self.pins = pins
        #: launch facts for NDRange nodes (kernel, shape, args) consumed by
        #: the cross-launch fusion pass; None for every other command
        self.kernel_info = kernel_info
        #: the node this launch was fused into (its body now runs there)
        self.fused_into: Optional["CommandNode"] = None

    def depends_on(self, dep: "CommandNode") -> bool:
        """Transitive reachability (dep-ward); used by cycle diagnostics."""
        seen = set()
        stack = [self]
        while stack:
            n = stack.pop()
            if n is dep:
                return True
            if id(n) in seen:
                continue
            seen.add(id(n))
            stack.extend(n.deps)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CommandNode #{self.nid} {self.label!r} state={self.state}>"


class CommandScheduler:
    """Per-queue event-DAG engine backed by the shared command pool."""

    def __init__(self, *, pool=None):
        self._pool = pool
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        #: live (not DONE) nodes in enqueue order
        self._nodes: List[CommandNode] = []
        self._next_id = 0
        #: per-buffer-key hazard state (id(buffer) -> node / node list)
        self._last_writer: Dict[int, CommandNode] = {}
        self._readers: Dict[int, List[CommandNode]] = {}
        #: the newest barrier node: every later command depends on it
        self._barrier: Optional[CommandNode] = None
        #: (nid, error) of failed nodes not yet re-raised
        self._errors: List[tuple] = []
        self._in_flight = 0

    # -- graph construction -----------------------------------------------------
    def add(
        self,
        action,
        event,
        *,
        wait_for: Sequence = (),
        reads: Iterable = (),
        writes: Iterable = (),
        barrier: bool = False,
        after_all: bool = False,
        label: str = "",
        kernel_info=None,
    ) -> CommandNode:
        """Record one command; no execution happens here (``clEnqueue*``).

        ``reads``/``writes`` are the buffer objects the command's
        functional work touches; ``barrier=True`` additionally orders
        every later command after this one, ``after_all`` (markers with no
        wait list) orders this one after everything currently live.
        ``kernel_info`` carries an NDRange launch's facts for the fusion
        pass (see :meth:`_fuse_released_locked`).
        """
        reads = list(reads)
        writes = list(writes)
        foreign: List["CommandScheduler"] = []
        with self._lock:
            node = CommandNode(
                self._next_id, action, event, label, self,
                pins=tuple(reads) + tuple(writes),
                kernel_info=kernel_info,
            )
            self._next_id += 1
            _STATS["nodes"] += 1

            def edge(dep: Optional[CommandNode], kind: str) -> None:
                if dep is None or dep.state == _DONE or dep is node:
                    return
                if dep not in node.deps:
                    node.deps.add(dep)
                    dep.dependents.append(node)
                    _STATS[kind] += 1

            for ev in wait_for or ():
                dep = getattr(ev, "_node", None)
                edge(dep, "explicit_edges")
                if (dep is not None and dep.scheduler is not None
                        and dep.scheduler is not self):
                    foreign.append(dep.scheduler)
            if after_all or barrier:
                for dep in self._nodes:
                    edge(dep, "barrier_edges")
            else:
                edge(self._barrier, "barrier_edges")
                for b in reads:
                    edge(self._last_writer.get(id(b)), "hazard_edges")
                for b in writes:
                    edge(self._last_writer.get(id(b)), "hazard_edges")
                    for r in self._readers.get(id(b), ()):
                        edge(r, "hazard_edges")

            for b in reads:
                self._readers.setdefault(id(b), []).append(node)
            for b in writes:
                self._last_writer[id(b)] = node
                self._readers[id(b)] = []
            if barrier:
                self._barrier = node

            self._nodes.append(node)
            if event is not None:
                event._defer()
                event._node = node
        # cross-queue wait: release the other queue's pending work so our
        # dependency can actually retire.  Outside our lock — two
        # schedulers' locks are never held together (no lock ordering).
        for sched in foreign:
            sched.flush()
        return node

    def add_dependency(self, node: CommandNode, dep: CommandNode) -> None:
        """Add an explicit edge ``dep -> node``.

        No cycle check here — this is the hook tests use to *construct*
        pathological graphs; :meth:`drain` detects the cycle and raises.
        """
        with self._lock:
            if dep.state != _DONE and dep not in node.deps:
                node.deps.add(dep)
                dep.dependents.append(node)
                _STATS["explicit_edges"] += 1

    # -- cross-launch fusion ------------------------------------------------------
    def _fuse_released_locked(self) -> None:
        """Fuse RAW producer->consumer launch pairs into one compiled launch.

        Runs at release time (``clFlush``/``clFinish``), when the graph
        between recorded nodes is final.  A consumer B fuses into its
        producer A only when B's *sole* dependency is A — every other
        command that could observe the intermediate buffer would hold a
        hazard or wait edge and therefore widen ``B.deps`` — and both
        launches cover the same NDRange.  The fused kernel still performs
        A's stores, so memory state after retirement is bit-identical;
        virtual timestamps were fixed at enqueue and never move.  Chains
        (A->B->C) fuse transitively: a consumer whose dependency was
        already absorbed follows ``fused_into`` to the hosting node.
        """
        if not _fusion_enabled():
            return
        for node in self._nodes:
            if node.kernel_info is None or node.state != _RELEASED:
                continue
            if len(node.deps) != 1:
                continue
            dep = next(iter(node.deps))
            host = dep.fused_into if dep.fused_into is not None else dep
            if (host.scheduler is not self or host.state != _RELEASED
                    or host.kernel_info is None):
                continue
            if self._try_fuse_locked(host, node):
                _STATS["fused_launches"] += 1

    def _try_fuse_locked(self, a: CommandNode, b: CommandNode) -> bool:
        ainfo, binfo = a.kernel_info, b.kernel_info
        if (ainfo["gsize"] != binfo["gsize"]
                or ainfo["lsize"] != binfo["lsize"]
                or ainfo["goffset"] != binfo["goffset"]
                or ainfo["interp"] is not binfo["interp"]):
            return False
        # verify-mode mem_flags enforcement names parameters; renamed
        # fused parameters would dodge it, so leave those launches alone
        for info in (ainfo, binfo):
            if info.get("readonly") or info.get("writeonly"):
                return False
        ak, bk = ainfo["kernel"], binfo["kernel"]
        a_arrays, b_arrays = ainfo["arrays"], binfo["arrays"]
        by_id = {id(arr): name for name, arr in a_arrays.items()}
        a_writes = {p.name for p in ak.buffer_params if "w" in p.access}
        shared = {}
        raw = False
        for p in bk.buffer_params:
            aname = by_id.get(id(b_arrays[p.name]))
            if aname is None:
                continue
            shared[p.name] = aname
            if "r" in p.access and aname in a_writes:
                raw = True
        if not raw:
            return False
        from ..kernelir import compile as klc
        from ..kernelir.fuse import FuseError, fuse_kernels

        if not klc.jit_enabled():
            return False
        try:
            fz = fuse_kernels(ak, bk, shared)
        except FuseError:
            return False
        if klc.get_compiled(fz.kernel) is None:
            return False
        arrays = dict(a_arrays)
        for bn, arr in b_arrays.items():
            arrays[fz.buffer_map[bn]] = arr
        scalars = dict(ainfo["scalars"])
        for sn, v in binfo["scalars"].items():
            scalars[fz.scalar_map[sn]] = v
        fk = fz.kernel
        gsize, lsize, goffset = ainfo["gsize"], ainfo["lsize"], ainfo["goffset"]
        interp = ainfo["interp"]

        def fused_action():
            klc.launch_kernel(
                fk, gsize, lsize, buffers=arrays, scalars=scalars,
                global_offset=goffset, interpreter=interp,
            )

        a.action = fused_action
        a.label = f"{a.label}+{b.label}" if a.label and b.label else a.label
        a.kernel_info = {
            "kernel": fk, "gsize": gsize, "lsize": lsize,
            "goffset": goffset, "arrays": arrays, "scalars": scalars,
            "interp": interp, "readonly": None, "writeonly": None,
        }
        b.action = None
        b.kernel_info = None
        b.fused_into = a
        return True

    # -- submission and retirement ----------------------------------------------
    def _submit_ready_locked(self) -> None:
        for node in self._nodes:
            if node.state == _RELEASED and not node.deps:
                node.state = _SUBMITTED
                if node.event is not None:
                    node.event._mark_submitted()
                self._in_flight += 1
                _STATS["max_in_flight"] = max(
                    _STATS["max_in_flight"], self._in_flight
                )
                pool = self._pool or workers.command_pool()
                pool.submit(self._run_node, node)

    def flush(self) -> None:
        """``clFlush``: release recorded nodes and submit the ready ones.

        Returns immediately; commands whose dependencies are still pending
        start as those dependencies retire.
        """
        with self._lock:
            for node in self._nodes:
                if node.state == _RECORDED:
                    node.state = _RELEASED
            self._fuse_released_locked()
            self._submit_ready_locked()

    def _run_node(self, node: CommandNode) -> None:
        node.state = _RUNNING
        if node.event is not None:
            node.event._mark_running()
        tracer = obs_tracer.ACTIVE
        try:
            if node.action is not None:
                if tracer is not None:
                    with tracer.worker_span(
                        workers.worker_index(),
                        node.label or "command",
                        {"node": node.nid},
                    ):
                        node.action()
                else:
                    node.action()
        except BaseException as e:  # noqa: BLE001 - re-raised at drain
            node.error = e
        self._retire(node)

    def _retire(self, node: CommandNode) -> None:
        foreign = []
        with self._lock:
            node.state = _DONE
            self._in_flight -= 1
            _STATS["executed"] += 1
            if node.error is not None:
                self._errors.append((node.nid, node.error))
            try:
                self._nodes.remove(node)
            except ValueError:  # pragma: no cover - defensive
                pass
            for dep_list in self._readers.values():
                if node in dep_list:
                    dep_list.remove(node)
            for key, writer in list(self._last_writer.items()):
                if writer is node:
                    del self._last_writer[key]
            if self._barrier is node:
                self._barrier = None
            for child in node.dependents:
                child.deps.discard(node)
                if (child.scheduler is not None
                        and child.scheduler is not self):
                    foreign.append(child.scheduler)
            self._submit_ready_locked()
            self._cv.notify_all()
        # a child on another queue may have become ready; poke its
        # scheduler outside our lock (locks are never held pairwise)
        for sched in foreign:
            sched._poke()
        # completion callbacks run outside the scheduler lock: a callback
        # may wait on other events or enqueue more work
        if node.event is not None:
            node.event._mark_complete(node.error)

    def _poke(self) -> None:
        """Re-check readiness after an external dependency retired."""
        with self._cv:
            for n in self._nodes:
                if n.deps:
                    n.deps = {d for d in n.deps if d.state != _DONE}
            self._submit_ready_locked()
            self._cv.notify_all()

    # -- draining ---------------------------------------------------------------
    def drain(self, event=None) -> None:
        """``clFinish`` (or a targeted ``clWaitForEvents``): flush, wait,
        and re-raise the first deferred execution error (lowest node id).

        Raises :class:`InvalidOperation` when pending commands can never
        run because their wait lists form a cycle.
        """
        _STATS["drains"] += 1
        target = getattr(event, "_node", None)
        with self._cv:
            while True:
                # release anything recorded since the last flush, prune
                # dependencies that retired on another queue's scheduler
                # (cross-scheduler edges resolve without our lock), then
                # push every ready node to the pool
                for node in self._nodes:
                    if node.state == _RECORDED:
                        node.state = _RELEASED
                    if node.deps:
                        node.deps = {d for d in node.deps
                                     if d.state != _DONE}
                self._fuse_released_locked()
                self._submit_ready_locked()
                if target is not None and target.state == _DONE:
                    break
                if not self._nodes:
                    break
                if self._in_flight == 0 and not any(
                    n.state == _SUBMITTED for n in self._nodes
                ):
                    if any(d.scheduler is not self
                           for n in self._nodes for d in n.deps):
                        # blocked on another queue's in-flight work, not a
                        # cycle: its _retire will poke us
                        self._cv.wait(timeout=0.05)
                        continue
                    # nothing runs, nothing can start: every remaining
                    # node waits on another remaining node — a cycle
                    stuck = [n for n in self._nodes if n.deps]
                    ids = ", ".join(f"#{n.nid}" for n in stuck)
                    raise InvalidOperation(
                        "wait-list cycle: command(s) "
                        f"{ids} depend on each other and can never run"
                    )
                self._cv.wait(timeout=0.5)
        self._raise_deferred()

    def _raise_deferred(self) -> None:
        with self._lock:
            if not self._errors:
                return
            self._errors.sort(key=lambda t: t[0])
            _, err = self._errors[0]
            self._errors.clear()
        raise err

    @property
    def pending(self) -> int:
        """Live (not yet retired) node count."""
        with self._lock:
            return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CommandScheduler {self.pending} pending>"
