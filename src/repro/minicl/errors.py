"""Error hierarchy mirroring OpenCL status codes."""

from __future__ import annotations

from .constants import StatusCode

__all__ = [
    "CLError",
    "InvalidValue",
    "InvalidDevice",
    "InvalidContext",
    "InvalidMemObject",
    "InvalidKernelName",
    "InvalidKernelArgs",
    "InvalidArgIndex",
    "InvalidWorkDimension",
    "InvalidWorkGroupSize",
    "InvalidWorkItemSize",
    "InvalidBufferSize",
    "InvalidOperation",
    "KernelVerificationError",
    "MemObjectAllocationFailure",
]


class CLError(RuntimeError):
    """Base class; carries the OpenCL status code."""

    code = StatusCode.INVALID_VALUE

    def __init__(self, message: str = ""):
        super().__init__(f"{self.code.name} ({self.code.value})"
                         + (f": {message}" if message else ""))


class InvalidValue(CLError):
    code = StatusCode.INVALID_VALUE


class InvalidDevice(CLError):
    code = StatusCode.INVALID_DEVICE


class InvalidContext(CLError):
    code = StatusCode.INVALID_CONTEXT


class InvalidMemObject(CLError):
    code = StatusCode.INVALID_MEM_OBJECT


class InvalidKernelName(CLError):
    code = StatusCode.INVALID_KERNEL_NAME


class InvalidKernelArgs(CLError):
    code = StatusCode.INVALID_KERNEL_ARGS


class InvalidArgIndex(CLError):
    code = StatusCode.INVALID_ARG_INDEX


class KernelVerificationError(InvalidKernelArgs):
    """Raised by ``verify=`` enqueue mode when the static kernel verifier
    reports error-severity findings (races, provable OOB, flag misuse).

    Carries the full :class:`repro.kernelir.verify.VerifyReport` as
    ``.report`` so callers can render the individual diagnostics.
    """

    def __init__(self, message: str = "", report=None):
        super().__init__(message)
        self.report = report


class InvalidWorkDimension(CLError):
    code = StatusCode.INVALID_WORK_DIMENSION


class InvalidWorkGroupSize(CLError):
    code = StatusCode.INVALID_WORK_GROUP_SIZE


class InvalidWorkItemSize(CLError):
    code = StatusCode.INVALID_WORK_ITEM_SIZE


class InvalidBufferSize(CLError):
    code = StatusCode.INVALID_BUFFER_SIZE


class InvalidOperation(CLError):
    code = StatusCode.INVALID_OPERATION


class MemObjectAllocationFailure(CLError):
    code = StatusCode.MEM_OBJECT_ALLOCATION_FAILURE
