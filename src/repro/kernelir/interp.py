"""Lock-step SIMT interpreter for the kernel IR.

The interpreter evaluates a kernel for *all* workitems of the NDRange
simultaneously: every per-workitem value is a numpy vector of length
``prod(global_size)``.  Statements execute in program order across all
workitems ("lock-step"), which makes workgroup barriers correct by
construction and makes execution fast (each IR operation is one vectorized
numpy operation instead of a Python-level loop per workitem).

Divergent control flow (``If``, per-workitem ``For`` bounds) is handled with
activity masks, the same way a real SIMT machine masks lanes.

This module is purely *functional*: it computes results and (optionally)
dynamic operation counts.  Timing is the job of the device models in
:mod:`repro.simcpu` and :mod:`repro.simgpu`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import special as _sp_special

from . import ast as ir
from ..plancache import LaunchPlanCache
from .types import BOOL, DType

__all__ = ["Interpreter", "LaunchResult", "DynamicCounters", "KernelExecutionError"]

#: Memoized id-grid vectors.  The ``get_global_id``/``get_local_id``/
#: ``get_group_id`` lane vectors and the linear group index are pure
#: functions of the launch shape, recomputed with arange/div/mod on every
#: functional launch; the figure sweeps and tests reuse a handful of shapes
#: over and over.  Cached arrays are marked read-only — the interpreter
#: never mutates them in place.
_GRID_CACHE = LaunchPlanCache("interp.id_grids", maxsize=64)


def _id_grids(gsize, lsize, goffset):
    """(ids dict, group_linear) for one launch shape (cached, read-only)."""
    key = (gsize, lsize, goffset)
    cached = _GRID_CACHE.get(key)
    if cached is not None:
        return cached
    n = int(np.prod(gsize))
    ngroups = tuple(g // l for g, l in zip(gsize, lsize))
    flat = np.arange(n, dtype=np.int64)
    ids: Dict[Tuple[str, int], np.ndarray] = {}
    stride = 1
    for d, g in enumerate(gsize):
        gid = (flat // stride) % g
        # get_global_id includes the launch's global work offset;
        # local/group ids do not (OpenCL 1.1 semantics)
        ids[("g", d)] = gid + goffset[d]
        ids[("l", d)] = gid % lsize[d]
        ids[("grp", d)] = gid // lsize[d]
        stride *= g

    glin = np.zeros(n, dtype=np.int64)
    gstride = 1
    for d in range(len(gsize)):
        glin += ids[("grp", d)] * gstride
        gstride *= ngroups[d]

    for a in ids.values():
        a.setflags(write=False)
    glin.setflags(write=False)
    value = (ids, glin)
    _GRID_CACHE.put(key, value)
    return value


class KernelExecutionError(RuntimeError):
    """Raised for malformed launches (bad sizes, missing args, OOB access)."""


@dataclasses.dataclass
class DynamicCounters:
    """Dynamic operation counts, summed over *active* workitem lanes.

    Used by tests to cross-check the static analysis in
    :mod:`repro.kernelir.analysis`.
    """

    flops: int = 0
    int_ops: int = 0
    loads: int = 0
    stores: int = 0
    local_loads: int = 0
    local_stores: int = 0
    atomic_ops: int = 0
    barriers: int = 0

    def total_ops(self) -> int:
        return (
            self.flops
            + self.int_ops
            + self.loads
            + self.stores
            + self.local_loads
            + self.local_stores
            + self.atomic_ops
        )


@dataclasses.dataclass
class LaunchResult:
    """Outcome of one NDRange launch."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    num_groups: Tuple[int, ...]
    counters: Optional[DynamicCounters] = None

    @property
    def total_workitems(self) -> int:
        return int(np.prod(self.global_size))

    @property
    def workgroup_count(self) -> int:
        return int(np.prod(self.num_groups))


def _normalize_offset(gsize, global_offset):
    """Validate/canonicalize a launch's global work offset (may be None)."""
    if global_offset is None:
        return None
    if isinstance(global_offset, int):
        global_offset = (global_offset,)
    global_offset = tuple(int(o) for o in global_offset)
    if len(global_offset) != len(gsize):
        raise KernelExecutionError(
            "global_offset rank must match global_size rank"
        )
    if any(o < 0 for o in global_offset):
        raise KernelExecutionError("global_offset must be non-negative")
    return global_offset


def _validate_args(kernel, buffers, scalars):
    """Check buffer bindings and coerce scalars to their declared dtypes.

    Shared by the interpreter and the compiled-kernel launcher
    (:mod:`repro.kernelir.compile`) so both engines reject malformed
    launches with identical diagnostics.  Mutates ``scalars`` in place.
    """
    for p in kernel.buffer_params:
        if p.name not in buffers:
            raise KernelExecutionError(
                f"kernel {kernel.name}: missing buffer argument {p.name!r}"
            )
        arr = buffers[p.name]
        if not isinstance(arr, np.ndarray) or arr.ndim != 1:
            raise KernelExecutionError(
                f"buffer {p.name!r} must be a 1-D numpy array"
            )
        if arr.dtype != p.dtype.np_dtype:
            raise KernelExecutionError(
                f"buffer {p.name!r} dtype {arr.dtype} != kernel param "
                f"{p.dtype.np_dtype}"
            )
    for p in kernel.scalar_params:
        if p.name not in scalars:
            raise KernelExecutionError(
                f"kernel {kernel.name}: missing scalar argument {p.name!r}"
            )
        scalars[p.name] = p.dtype.np_dtype.type(scalars[p.name])


def _normalize_sizes(
    kernel: ir.Kernel,
    global_size,
    local_size,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Validate and canonicalize NDRange sizes (OpenCL 1.1 divisibility rule)."""
    if isinstance(global_size, int):
        global_size = (global_size,)
    global_size = tuple(int(g) for g in global_size)
    if len(global_size) != kernel.work_dim:
        raise KernelExecutionError(
            f"kernel {kernel.name} has work_dim={kernel.work_dim}, "
            f"got global_size of rank {len(global_size)}"
        )
    if any(g <= 0 for g in global_size):
        raise KernelExecutionError(f"global_size must be positive, got {global_size}")
    if local_size is None:
        # Interpreter-level default: one workgroup spanning the whole range.
        # (The minicl runtime applies its own NULL-local-size policy before
        # reaching the interpreter.)
        local_size = global_size
    if isinstance(local_size, int):
        local_size = (local_size,)
    local_size = tuple(int(l) for l in local_size)
    if len(local_size) != len(global_size):
        raise KernelExecutionError("local_size rank must match global_size rank")
    if any(l <= 0 for l in local_size):
        raise KernelExecutionError(f"local_size must be positive, got {local_size}")
    for g, l in zip(global_size, local_size):
        if g % l != 0:
            raise KernelExecutionError(
                f"CL_INVALID_WORK_GROUP_SIZE: global size {g} not divisible by "
                f"local size {l}"
            )
    return global_size, local_size


class _Frame:
    """Execution state shared by the statement/expression evaluators."""

    __slots__ = (
        "kernel",
        "gsize",
        "lsize",
        "ngroups",
        "n",
        "buffers",
        "env",
        "locals",
        "group_linear",
        "ids",
        "counters",
        "readonly",
        "writeonly",
    )

    def __init__(self, kernel, gsize, lsize, buffers, scalars, counters,
                 goffset=None, readonly=None, writeonly=None):
        self.kernel = kernel
        self.gsize = gsize
        self.lsize = lsize
        self.ngroups = tuple(g // l for g, l in zip(gsize, lsize))
        self.n = int(np.prod(gsize))
        self.buffers = buffers
        self.env: Dict[str, np.ndarray] = dict(scalars)
        self.counters = counters
        self.readonly = frozenset(readonly or ())
        self.writeonly = frozenset(writeonly or ())
        goffset = tuple(goffset) if goffset else (0,) * len(gsize)
        self.ids, self.group_linear = _id_grids(gsize, lsize, goffset)

        nwg = int(np.prod(self.ngroups))
        self.locals: Dict[str, np.ndarray] = {
            a.name: np.zeros((nwg, a.size), dtype=a.dtype.np_dtype)
            for a in kernel.local_arrays
        }


class Interpreter:
    """Executes kernels functionally over numpy-backed buffers.

    Parameters
    ----------
    max_loop_iters:
        Safety valve for runaway loops (masked loops iterate until every lane
        finishes; a bug in loop bounds would otherwise hang).
    bounds_check:
        When True (default), every global load/store index is range-checked,
        mirroring a debug OpenCL runtime.
    """

    def __init__(self, max_loop_iters: int = 10_000_000, bounds_check: bool = True):
        self.max_loop_iters = int(max_loop_iters)
        self.bounds_check = bool(bounds_check)

    # -- public API ---------------------------------------------------------
    def launch(
        self,
        kernel: ir.Kernel,
        global_size,
        local_size=None,
        buffers: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
        count_ops: bool = False,
        global_offset=None,
        readonly=None,
        writeonly=None,
    ) -> LaunchResult:
        """Run ``kernel`` over the NDRange, mutating ``buffers`` in place.

        ``readonly`` / ``writeonly`` are optional sets of buffer names whose
        host-side allocation flags (``mem_flags.READ_ONLY`` /
        ``WRITE_ONLY``) should be enforced at runtime: a store or atomic to
        a read-only buffer, or a load from a write-only buffer, raises
        :class:`KernelExecutionError`.  By default nothing is enforced,
        matching a permissive OpenCL CPU runtime.
        """
        buffers = dict(buffers or {})
        scalars = dict(scalars or {})
        gsize, lsize = _normalize_sizes(kernel, global_size, local_size)
        global_offset = _normalize_offset(gsize, global_offset)
        _validate_args(kernel, buffers, scalars)

        counters = DynamicCounters() if count_ops else None
        frame = _Frame(
            kernel, gsize, lsize, buffers, scalars, counters, global_offset,
            readonly=readonly, writeonly=writeonly,
        )
        mask = np.ones(frame.n, dtype=bool)
        self._exec_body(kernel.body, frame, mask)
        return LaunchResult(
            global_size=gsize,
            local_size=lsize,
            num_groups=frame.ngroups,
            counters=counters,
        )

    # -- statements -----------------------------------------------------------
    def _exec_body(self, body, frame: _Frame, mask: np.ndarray) -> None:
        for stmt in body:
            self._exec_stmt(stmt, frame, mask)

    def _exec_stmt(self, stmt, frame: _Frame, mask: np.ndarray) -> None:
        if isinstance(stmt, ir.Assign):
            val = np.asarray(self._eval(stmt.value, frame, mask))
            if val.shape != (frame.n,):
                val = np.broadcast_to(val, (frame.n,))
            old = frame.env.get(stmt.name)
            if mask.all():
                # all lanes active: alias the evaluated vector directly —
                # env entries are never mutated in place, so the defensive
                # copy the masked path needs is pure overhead here.
                frame.env[stmt.name] = val
            elif old is None:
                # undefined lanes keep zero-init; harmless, they are
                # masked out for all observable effects.
                frame.env[stmt.name] = np.where(mask, val, 0).astype(
                    val.dtype, copy=False
                )
            else:
                old_full = np.asarray(old)
                if old_full.shape != (frame.n,):
                    old_full = np.broadcast_to(old_full, (frame.n,))
                frame.env[stmt.name] = np.where(mask, val, old_full)
        elif isinstance(stmt, ir.Store):
            self._store_global(stmt, frame, mask)
        elif isinstance(stmt, ir.AtomicAdd):
            self._atomic_global(stmt, frame, mask)
        elif isinstance(stmt, ir.StoreLocal):
            self._store_local(stmt, frame, mask)
        elif isinstance(stmt, ir.AtomicAddLocal):
            self._atomic_local(stmt, frame, mask)
        elif isinstance(stmt, ir.For):
            self._exec_for(stmt, frame, mask)
        elif isinstance(stmt, ir.If):
            cond = self._as_full(self._eval(stmt.cond, frame, mask), frame)
            then_mask = mask & cond.astype(bool)
            if then_mask.any():
                self._exec_body(stmt.then_body, frame, then_mask)
            if stmt.else_body:
                else_mask = mask & ~cond.astype(bool)
                if else_mask.any():
                    self._exec_body(stmt.else_body, frame, else_mask)
        elif isinstance(stmt, ir.Barrier):
            # Lock-step execution already synchronizes every lane at each
            # statement, so a barrier is a semantic no-op here.  It still
            # matters to the analyses and schedulers.
            if frame.counters is not None:
                frame.counters.barriers += 1
        else:  # pragma: no cover - defensive
            raise KernelExecutionError(f"unknown statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ir.For, frame: _Frame, mask: np.ndarray) -> None:
        start = self._as_full(self._eval(stmt.start, frame, mask), frame)
        stop = self._as_full(self._eval(stmt.stop, frame, mask), frame)
        step = self._as_full(self._eval(stmt.step, frame, mask), frame)
        # Uniform-bounds fast path: when start/stop/step are broadcast
        # scalars (zero-stride views, i.e. identical across every lane) the
        # trip count is the same for all active lanes, so the per-iteration
        # full-width ``active`` mask recomputation collapses to one scalar
        # compare and the loop body runs under the caller's mask unchanged.
        # Restricted to integer bounds: a float step would accumulate
        # fractionally in the general path (loopvar promotes), which the
        # scalar walk cannot reproduce.
        if (
            start.strides == (0,)
            and stop.strides == (0,)
            and step.strides == (0,)
            and start.dtype.kind in "iu"
            and stop.dtype.kind in "iu"
            and step.dtype.kind in "iu"
        ):
            self._exec_for_uniform(stmt, frame, mask, start, stop, step)
            return
        if (step == 0).any():
            raise KernelExecutionError(f"loop {stmt.var}: zero step")
        loopvar = start.astype(np.int64, copy=True)
        saved = frame.env.get(stmt.var)
        iters = 0
        while True:
            active = mask & np.where(step > 0, loopvar < stop, loopvar > stop)
            if not active.any():
                break
            frame.env[stmt.var] = loopvar
            self._exec_body(stmt.body, frame, active)
            # The body may reassign the induction variable (not supported:
            # keep canonical form); advance from our private copy.
            loopvar = loopvar + step
            iters += 1
            if iters > self.max_loop_iters:
                raise KernelExecutionError(
                    f"loop {stmt.var} exceeded {self.max_loop_iters} iterations"
                )
        if saved is not None:
            frame.env[stmt.var] = saved
        else:
            frame.env.pop(stmt.var, None)

    def _exec_for_uniform(
        self, stmt: ir.For, frame: _Frame, mask: np.ndarray, start, stop, step
    ) -> None:
        """Lock-step loop with lane-invariant bounds (see ``_exec_for``)."""
        cur = int(start[0])
        end = int(stop[0])
        inc = int(step[0])
        if inc == 0:
            raise KernelExecutionError(f"loop {stmt.var}: zero step")
        saved = frame.env.get(stmt.var)
        iters = 0
        if mask.any():
            while (cur < end) if inc > 0 else (cur > end):
                frame.env[stmt.var] = np.broadcast_to(
                    np.int64(cur), (frame.n,)
                )
                self._exec_body(stmt.body, frame, mask)
                cur += inc
                iters += 1
                if iters > self.max_loop_iters:
                    raise KernelExecutionError(
                        f"loop {stmt.var} exceeded {self.max_loop_iters} "
                        f"iterations"
                    )
        if saved is not None:
            frame.env[stmt.var] = saved
        else:
            frame.env.pop(stmt.var, None)

    # -- memory ---------------------------------------------------------------
    def _checked_idx(self, idx: np.ndarray, size: int, what: str, m: np.ndarray):
        if self.bounds_check:
            sel = idx[m] if m is not None else idx
            if sel.size and (sel.min() < 0 or sel.max() >= size):
                raise KernelExecutionError(
                    f"out-of-bounds access on {what}: index range "
                    f"[{int(sel.min())}, {int(sel.max())}] vs size {size}"
                )

    def _check_writable(self, name: str, frame: _Frame) -> None:
        if name in frame.readonly:
            raise KernelExecutionError(
                f"write to buffer {name!r} allocated with mem_flags.READ_ONLY"
            )

    def _check_readable(self, name: str, frame: _Frame) -> None:
        if name in frame.writeonly:
            raise KernelExecutionError(
                f"read from buffer {name!r} allocated with mem_flags.WRITE_ONLY"
            )

    def _store_global(self, stmt: ir.Store, frame: _Frame, mask: np.ndarray) -> None:
        self._check_writable(stmt.buffer, frame)
        idx = self._as_full(self._eval(stmt.index, frame, mask), frame).astype(np.int64)
        val = self._as_full(self._eval(stmt.value, frame, mask), frame)
        buf = frame.buffers[stmt.buffer]
        self._checked_idx(idx, buf.shape[0], f"buffer {stmt.buffer!r}", mask)
        buf[idx[mask]] = val[mask].astype(buf.dtype, copy=False)
        if frame.counters is not None:
            frame.counters.stores += int(mask.sum())

    def _atomic_global(self, stmt: ir.AtomicAdd, frame: _Frame, mask: np.ndarray) -> None:
        self._check_writable(stmt.buffer, frame)
        idx = self._as_full(self._eval(stmt.index, frame, mask), frame).astype(np.int64)
        val = self._as_full(self._eval(stmt.value, frame, mask), frame)
        buf = frame.buffers[stmt.buffer]
        self._checked_idx(idx, buf.shape[0], f"buffer {stmt.buffer!r}", mask)
        np.add.at(buf, idx[mask], val[mask].astype(buf.dtype, copy=False))
        if frame.counters is not None:
            frame.counters.atomic_ops += int(mask.sum())

    def _store_local(self, stmt: ir.StoreLocal, frame: _Frame, mask: np.ndarray) -> None:
        idx = self._as_full(self._eval(stmt.index, frame, mask), frame).astype(np.int64)
        val = self._as_full(self._eval(stmt.value, frame, mask), frame)
        arr = frame.locals[stmt.array]
        self._checked_idx(idx, arr.shape[1], f"local {stmt.array!r}", mask)
        g = frame.group_linear
        arr[g[mask], idx[mask]] = val[mask].astype(arr.dtype, copy=False)
        if frame.counters is not None:
            frame.counters.local_stores += int(mask.sum())

    def _atomic_local(
        self, stmt: ir.AtomicAddLocal, frame: _Frame, mask: np.ndarray
    ) -> None:
        idx = self._as_full(self._eval(stmt.index, frame, mask), frame).astype(np.int64)
        val = self._as_full(self._eval(stmt.value, frame, mask), frame)
        arr = frame.locals[stmt.array]
        self._checked_idx(idx, arr.shape[1], f"local {stmt.array!r}", mask)
        g = frame.group_linear
        np.add.at(arr, (g[mask], idx[mask]), val[mask].astype(arr.dtype, copy=False))
        if frame.counters is not None:
            frame.counters.atomic_ops += int(mask.sum())

    # -- expressions ------------------------------------------------------------
    def _as_full(self, v, frame: _Frame) -> np.ndarray:
        """Broadcast a (possibly scalar) value to the full lane vector."""
        a = np.asarray(v)
        if a.shape == (frame.n,):
            return a
        return np.broadcast_to(a, (frame.n,))

    def _eval(self, e: ir.Expr, frame: _Frame, mask: np.ndarray):
        if isinstance(e, ir.Const):
            return e.dtype.np_dtype.type(e.value)
        if isinstance(e, ir.GlobalId):
            return frame.ids[("g", e.dim)]
        if isinstance(e, ir.LocalId):
            return frame.ids[("l", e.dim)]
        if isinstance(e, ir.GroupId):
            return frame.ids[("grp", e.dim)]
        if isinstance(e, ir.GlobalSize):
            return np.int64(frame.gsize[e.dim] if e.dim < len(frame.gsize) else 1)
        if isinstance(e, ir.LocalSize):
            return np.int64(frame.lsize[e.dim] if e.dim < len(frame.lsize) else 1)
        if isinstance(e, ir.NumGroups):
            return np.int64(frame.ngroups[e.dim] if e.dim < len(frame.ngroups) else 1)
        if isinstance(e, ir.Var):
            try:
                return frame.env[e.name]
            except KeyError:
                raise KernelExecutionError(f"undefined variable {e.name!r}") from None
        if isinstance(e, ir.BinOp):
            return self._eval_binop(e, frame, mask)
        if isinstance(e, ir.UnOp):
            v = self._eval(e.operand, frame, mask)
            if e.op == "neg":
                return np.negative(v)
            return np.logical_not(v)
        if isinstance(e, ir.Call):
            return self._eval_call(e, frame, mask)
        if isinstance(e, ir.Load):
            self._check_readable(e.buffer, frame)
            idx = self._as_full(
                self._eval(e.index, frame, mask), frame
            ).astype(np.int64)
            buf = frame.buffers[e.buffer]
            self._checked_idx(idx, buf.shape[0], f"buffer {e.buffer!r}", mask)
            # Clip masked-off lanes so inactive gathers cannot fault.
            safe = np.clip(idx, 0, buf.shape[0] - 1) if not mask.all() else idx
            if frame.counters is not None:
                frame.counters.loads += int(mask.sum())
            return buf[safe]
        if isinstance(e, ir.LoadLocal):
            idx = self._as_full(
                self._eval(e.index, frame, mask), frame
            ).astype(np.int64)
            arr = frame.locals[e.array]
            self._checked_idx(idx, arr.shape[1], f"local {e.array!r}", mask)
            safe = np.clip(idx, 0, arr.shape[1] - 1) if not mask.all() else idx
            if frame.counters is not None:
                frame.counters.local_loads += int(mask.sum())
            return arr[frame.group_linear, safe]
        if isinstance(e, ir.Select):
            c = self._eval(e.cond, frame, mask)
            a = self._eval(e.if_true, frame, mask)
            b = self._eval(e.if_false, frame, mask)
            return np.where(np.asarray(c, dtype=bool), a, b)
        if isinstance(e, ir.Cast):
            v = self._eval(e.operand, frame, mask)
            return np.asarray(v).astype(e.dtype.np_dtype, copy=False)
        raise KernelExecutionError(f"unknown expression {type(e).__name__}")

    def _count_arith(self, e: ir.Expr, frame: _Frame, mask: np.ndarray, n_ops=1):
        if frame.counters is not None:
            lanes = int(mask.sum())
            if e.dtype.is_float:
                frame.counters.flops += n_ops * lanes
            else:
                frame.counters.int_ops += n_ops * lanes

    def _eval_binop(self, e: ir.BinOp, frame: _Frame, mask: np.ndarray):
        a = self._eval(e.lhs, frame, mask)
        b = self._eval(e.rhs, frame, mask)
        op = e.op
        if op in ir.CMP_OPS:
            fn = {
                "<": np.less,
                "<=": np.less_equal,
                ">": np.greater,
                ">=": np.greater_equal,
                "==": np.equal,
                "!=": np.not_equal,
            }[op]
            return fn(a, b)
        if op == "and":
            return np.logical_and(a, b)
        if op == "or":
            return np.logical_or(a, b)
        self._count_arith(e, frame, mask)
        dt = e.dtype.np_dtype
        if op == "+":
            return np.add(a, b, dtype=dt)
        if op == "-":
            return np.subtract(a, b, dtype=dt)
        if op == "*":
            return np.multiply(a, b, dtype=dt)
        if op == "/":
            if e.dtype.is_float:
                return np.divide(a, b, dtype=dt)
            # C integer division semantics for the non-negative indices our
            # kernels use (documented restriction).
            return np.floor_divide(a, b).astype(dt, copy=False)
        if op == "//":
            return np.floor_divide(a, b).astype(dt, copy=False)
        if op == "%":
            return np.mod(a, b).astype(dt, copy=False)
        if op == "min":
            return np.minimum(a, b).astype(dt, copy=False)
        if op == "max":
            return np.maximum(a, b).astype(dt, copy=False)
        if op == "&":
            return np.bitwise_and(a, b)
        if op == "|":
            return np.bitwise_or(a, b)
        if op == "^":
            return np.bitwise_xor(a, b)
        if op == "<<":
            return np.left_shift(a, b)
        if op == ">>":
            return np.right_shift(a, b)
        raise KernelExecutionError(f"unknown binop {op!r}")  # pragma: no cover

    def _eval_call(self, e: ir.Call, frame: _Frame, mask: np.ndarray):
        args = [self._eval(a, frame, mask) for a in e.args]
        dt = e.dtype.np_dtype
        fn = e.fn
        # mad/fma count as two flops; everything else as one (a simplification
        # consistent with how the timing model charges transcendental ops via
        # its latency table).
        self._count_arith(e, frame, mask, n_ops=2 if fn in ("mad", "fma") else 1)
        if fn == "exp":
            return np.exp(args[0], dtype=dt)
        if fn == "log":
            return np.log(args[0], dtype=dt)
        if fn == "sqrt":
            return np.sqrt(args[0], dtype=dt)
        if fn == "rsqrt":
            return (1.0 / np.sqrt(args[0])).astype(dt, copy=False)
        if fn == "fabs":
            return np.abs(args[0]).astype(dt, copy=False)
        if fn == "sin":
            return np.sin(args[0], dtype=dt)
        if fn == "cos":
            return np.cos(args[0], dtype=dt)
        if fn == "floor":
            return np.floor(args[0]).astype(dt, copy=False)
        if fn == "erf":
            return _sp_special.erf(args[0]).astype(dt, copy=False)
        if fn == "pow":
            return np.power(args[0], args[1]).astype(dt, copy=False)
        if fn in ("mad", "fma"):
            return (
                np.asarray(args[0], dtype=dt) * np.asarray(args[1], dtype=dt)
                + np.asarray(args[2], dtype=dt)
            ).astype(dt, copy=False)
        raise KernelExecutionError(f"unknown intrinsic {fn!r}")  # pragma: no cover
