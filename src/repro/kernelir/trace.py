"""Memory-access trace generation from kernel execution.

For small launches, the interpreter can record every global load/store each
workitem performs (buffer, element index, byte address).  Traces serve two
purposes:

* they drive the *exact* cache simulator (:mod:`repro.simcpu.cache`) so the
  closed-form model in :mod:`repro.simcpu.cachemodel` can be cross-validated
  against ground truth (see ``tests/simcpu/test_trace_crosscheck.py``);
* they let locality studies replay a kernel's traffic under different
  workgroup-to-core placements, the microscopic version of the paper's
  affinity experiment.

Tracing multiplies interpreter cost and memory use by the access count, so
it refuses NDRanges above ``max_items``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import ast as ir
from .interp import Interpreter, KernelExecutionError

__all__ = ["MemoryAccess", "KernelTrace", "TracingInterpreter", "trace_kernel"]


@dataclasses.dataclass(frozen=True)
class MemoryAccess:
    """One dynamic global-memory access by one workitem."""

    buffer: str
    element: int
    byte_address: int
    is_store: bool
    workitem: int        # linearized global id
    workgroup: int       # linearized group id


@dataclasses.dataclass
class KernelTrace:
    """All global accesses of one launch, in program order."""

    accesses: List[MemoryAccess]
    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    #: byte base assigned to each buffer in the flat address space
    buffer_bases: Dict[str, int]

    def __len__(self) -> int:
        return len(self.accesses)

    def loads(self) -> Iterator[MemoryAccess]:
        return (a for a in self.accesses if not a.is_store)

    def stores(self) -> Iterator[MemoryAccess]:
        return (a for a in self.accesses if a.is_store)

    def addresses(self) -> List[int]:
        return [a.byte_address for a in self.accesses]

    def by_workitem(self) -> Dict[int, List[MemoryAccess]]:
        out: Dict[int, List[MemoryAccess]] = {}
        for a in self.accesses:
            out.setdefault(a.workitem, []).append(a)
        return out

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Unique cache lines touched, in bytes."""
        lines = {a.byte_address // line_bytes for a in self.accesses}
        return len(lines) * line_bytes

    def replay(self, hierarchy, placement=None) -> Dict[str, int]:
        """Replay the trace through a :class:`CacheHierarchy`.

        ``placement`` maps a workgroup id to a core (default: round-robin
        over the hierarchy's cores, the runtime's arbitrary behaviour).
        Returns per-level access counts.
        """
        counts = {"L1": 0, "L2": 0, "L3": 0, "DRAM": 0}
        ncores = hierarchy.num_cores
        for a in self.accesses:
            core = (
                placement[a.workgroup] if placement is not None
                else a.workgroup % ncores
            )
            r = hierarchy.access(core, a.byte_address, is_write=a.is_store)
            counts[r.level] += 1
        return counts


class TracingInterpreter(Interpreter):
    """An interpreter that records all global memory traffic.

    The lock-step design is preserved: each IR access site contributes its
    per-lane indices in one vectorized append.  Program order between sites
    follows statement order; lanes of one site are recorded in workitem
    order, which matches how the serialized CPU runtime walks a workgroup.
    """

    def __init__(self, max_items: int = 1 << 16, **kw):
        super().__init__(**kw)
        self.max_items = int(max_items)
        self._trace: Optional[List[Tuple[str, np.ndarray, np.ndarray, bool]]] = None
        self._frame = None

    # -- capture hooks --------------------------------------------------------
    def _record(self, buffer: str, idx: np.ndarray, mask: np.ndarray, store: bool):
        if self._trace is not None:
            self._trace.append((buffer, idx[mask].copy(),
                                np.nonzero(mask)[0], store))

    def _checked_idx(self, idx, size, what, m):
        super()._checked_idx(idx, size, what, m)

    def _eval(self, e, frame, mask):
        if isinstance(e, ir.Load) and self._trace is not None:
            idx = np.asarray(
                super()._eval(e.index, frame, mask)
            )
            idx = np.broadcast_to(idx, (frame.n,)).astype(np.int64)
            self._record(e.buffer, idx, mask, False)
        return super()._eval(e, frame, mask)

    def _store_global(self, stmt, frame, mask):
        idx = np.broadcast_to(
            np.asarray(super()._eval(stmt.index, frame, mask)), (frame.n,)
        ).astype(np.int64)
        self._record(stmt.buffer, idx, mask, True)
        super()._store_global(stmt, frame, mask)

    def _atomic_global(self, stmt, frame, mask):
        idx = np.broadcast_to(
            np.asarray(super()._eval(stmt.index, frame, mask)), (frame.n,)
        ).astype(np.int64)
        self._record(stmt.buffer, idx, mask, False)  # RMW: read...
        self._record(stmt.buffer, idx, mask, True)   # ...then write
        super()._atomic_global(stmt, frame, mask)

    # -- public -----------------------------------------------------------------
    def trace(
        self,
        kernel: ir.Kernel,
        global_size,
        local_size=None,
        buffers: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
    ) -> KernelTrace:
        n = int(np.prod(np.atleast_1d(global_size)))
        if n > self.max_items:
            raise KernelExecutionError(
                f"refusing to trace {n} workitems (max {self.max_items}); "
                f"tracing is for small launches"
            )
        self._trace = []
        try:
            res = self.launch(
                kernel, global_size, local_size, buffers=buffers, scalars=scalars
            )
        finally:
            raw, self._trace = self._trace, None

        # lay buffers out in a flat byte space, 4KiB-aligned
        bases: Dict[str, int] = {}
        cursor = 0
        itemsize = {p.name: p.dtype.itemsize for p in kernel.buffer_params}
        sizes = {name: arr.nbytes for name, arr in (buffers or {}).items()}
        for p in kernel.buffer_params:
            bases[p.name] = cursor
            cursor += ((sizes.get(p.name, 0) + 4095) // 4096 + 1) * 4096

        gsize, lsize = res.global_size, res.local_size
        # group linearization mirrors the interpreter's
        ngroups = tuple(g // l for g, l in zip(gsize, lsize))

        def group_of(flat_item: int) -> int:
            g = 0
            stride = 1
            gstride = 1
            rem = flat_item
            for d, (gs, ls) in enumerate(zip(gsize, lsize)):
                gid_d = (flat_item // stride) % gs
                g += (gid_d // ls) * gstride
                stride *= gs
                gstride *= ngroups[d]
            return g

        accesses: List[MemoryAccess] = []
        for buffer, elems, lanes, is_store in raw:
            base = bases[buffer]
            isz = itemsize[buffer]
            for e, lane in zip(elems.tolist(), lanes.tolist()):
                accesses.append(
                    MemoryAccess(
                        buffer=buffer,
                        element=int(e),
                        byte_address=base + int(e) * isz,
                        is_store=is_store,
                        workitem=int(lane),
                        workgroup=group_of(int(lane)),
                    )
                )
        return KernelTrace(
            accesses=accesses,
            global_size=gsize,
            local_size=lsize,
            buffer_bases=bases,
        )


def trace_kernel(
    kernel: ir.Kernel,
    global_size,
    local_size=None,
    *,
    buffers: Optional[Dict[str, np.ndarray]] = None,
    scalars: Optional[Dict[str, object]] = None,
    max_items: int = 1 << 16,
) -> KernelTrace:
    """Convenience wrapper: trace one launch."""
    return TracingInterpreter(max_items=max_items).trace(
        kernel, global_size, local_size, buffers=buffers, scalars=scalars
    )
