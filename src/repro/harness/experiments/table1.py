"""Table I — the experimental environment.

Reproduces the environment table from the device models' self-descriptions
(the simulated stand-ins for the paper's Xeon E5645 + GTX 580 testbed).
"""

from __future__ import annotations

from ...simcpu.spec import XEON_E5645
from ...simgpu.spec import GTX580
from ..report import ExperimentResult, Series

__all__ = ["run", "environment_rows"]


def environment_rows() -> list:
    """Ordered (label, value) pairs, CPU section then GPU section."""
    rows = [("-- CPU --", "")]
    rows += list(XEON_E5645.describe().items())
    rows += [("-- GPU --", "")]
    rows += list(GTX580.describe().items())
    rows += [
        ("O/S", "deterministic virtual time (simulated)"),
        ("Platform", "repro.minicl on repro.simcpu (CPU) / repro.simgpu (GPU)"),
        ("Compiler", "repro.kernelir vectorizing interpreter"),
    ]
    return rows


def run(fast: bool = False) -> ExperimentResult:
    rows = environment_rows()
    return ExperimentResult(
        experiment_id="table1",
        title="Experimental environment",
        series=[
            Series(
                "peak Gflop/s",
                {
                    "CPU": XEON_E5645.peak_gflops_sp,
                    "GPU": GTX580.peak_gflops_sp,
                },
            )
        ],
        value_name="peak single-precision Gflop/s",
        notes=[f"{k}: {v}" if v else k for k, v in rows],
    )
