"""``Matrixmul`` — blocked matrix multiply using ``__local`` tiles — and
``MatrixmulNaive``, the same computation without local memory.

Table II: Matrixmul global 800x1600 / 1600x3200 / 4000x8000, local 16x16;
MatrixmulNaive the same NDRanges.  The NDRange spans the output matrix C
(dimension 0 = columns, dimension 1 = rows):

    C[h x w] = A[h x K] @ B[K x w]

The blocked variant is the paper's example of a kernel whose optimal
workgroup size differs between CPU (8x8) and GPU (16x16) because workgroup
size selects the ``__local`` tile, hence the cache/scratchpad footprint.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = [
    "MatrixMulBenchmark",
    "MatrixMulNaiveBenchmark",
    "build_matrixmul_kernel",
    "build_matrixmul_naive_kernel",
]


def build_matrixmul_kernel(block: int = 16) -> Kernel:
    """Tiled matmul; must be launched with local size (block, block)."""
    if block <= 0 or block & (block - 1):
        raise ValueError("block must be a positive power of two")
    kb = KernelBuilder("matrixMul", work_dim=2)
    A = kb.buffer("A", F32, access="r")
    B = kb.buffer("B", F32, access="r")
    C = kb.buffer("C", F32, access="w")
    K = kb.scalar("K", I32)       # inner dimension
    wB = kb.scalar("wB", I32)     # width of B and C
    As = kb.local_array("As", block * block, F32)
    Bs = kb.local_array("Bs", block * block, F32)

    col = kb.global_id(0)
    row = kb.global_id(1)
    lx = kb.local_id(0)
    ly = kb.local_id(1)

    acc = kb.let("acc", kb.f32(0.0))
    num_tiles = kb.let("num_tiles", K / block)
    with kb.loop("t", 0, kb.cast(num_tiles, I32)) as t:
        As[ly * block + lx] = A[row * K + t * block + lx]
        Bs[ly * block + lx] = B[(t * block + ly) * wB + col]
        kb.barrier()
        with kb.loop("k2", 0, block) as k2:
            acc = kb.let("acc", kb.mad(As[ly * block + k2], Bs[k2 * block + lx], acc))
        kb.barrier()
    C[row * wB + col] = acc
    return kb.finish()


def build_matrixmul_naive_kernel(coalesce: int = 1) -> Kernel:
    """Naive matmul: one workitem computes one C element straight from DRAM."""
    kb = KernelBuilder("matrixMulNaive", work_dim=2)
    A = kb.buffer("A", F32, access="r")
    B = kb.buffer("B", F32, access="r")
    C = kb.buffer("C", F32, access="w")
    K = kb.scalar("K", I32)
    wB = kb.scalar("wB", I32)
    col = kb.global_id(0)
    row = kb.global_id(1)
    acc = kb.let("acc", kb.f32(0.0))
    with kb.loop("k", 0, K) as k:
        acc = kb.let("acc", kb.mad(A[row * K + k], B[k * wB + col], acc))
    C[row * wB + col] = acc
    return kb.finish()


class _MatMulBase(Benchmark):
    work_dim = 2
    default_global_sizes = ((800, 1600), (1600, 3200), (4000, 8000))
    default_local_size = (16, 16)
    supports_coalescing = False

    #: inner-dimension divisor: K = width / k_div (square-ish matrices, as
    #: the paper's matrixMul uses)
    k_div = 1

    def inner_dim(self, global_size: Sequence[int]) -> int:
        w = int(global_size[0])
        # round down to a multiple of 16 so every tile size (1..16) sees the
        # same K and the Figure 3 sweep compares identical computations
        return max(16, (w // self.k_div) // 16 * 16)

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        w, h = int(global_size[0]), int(global_size[1])
        K = self.inner_dim(global_size)
        return (
            {
                "A": rng.random(h * K, dtype=np.float32),
                "B": rng.random(K * w, dtype=np.float32),
                "C": np.zeros(h * w, dtype=np.float32),
            },
            {"K": K, "wB": w},
        )

    def reference(self, buffers, scalars, global_size):
        w, h = int(global_size[0]), int(global_size[1])
        K = int(scalars["K"])
        A = buffers["A"].reshape(h, K).astype(np.float64)
        B = buffers["B"].reshape(K, w).astype(np.float64)
        return {"C": (A @ B).astype(np.float32).ravel()}


class MatrixMulBenchmark(_MatMulBase):
    name = "Matrixmul"

    def __init__(self, block: int = 16):
        self.block = block
        self.default_local_size = (block, block)

    def cache_token(self):
        # the tile size changes both the kernel IR and the data shapes
        return (self.block,)

    def inner_dim(self, global_size: Sequence[int]) -> int:
        K = super().inner_dim(global_size)
        # blocked kernel needs K to be a multiple of the tile edge
        return max(self.block, (K // self.block) * self.block)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Matrixmul does not support workitem coalescing")
        return build_matrixmul_kernel(self.block)


class MatrixMulNaiveBenchmark(_MatMulBase):
    name = "MatrixmulNaive"

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("MatrixmulNaive does not support workitem coalescing")
        return build_matrixmul_naive_kernel()
