"""Request/response schema of the experiment service.

A request is one JSON object.  Two kinds exist:

``{"kind": "experiment", "tenant": "acme", "name": "fig1",
   "fast": false}``
    Regenerate one paper artifact; the response CSV is byte-identical to
    what ``python -m repro experiments <name> --csv`` writes.

``{"kind": "launch", "tenant": "acme", "benchmark": "Square",
   "global_size": [65536], "local_size": null, "coalesce": 1,
   "device": "cpu"}``
    Measure one kernel launch through the full minicl path (the paper's
    Section III-A methodology) and return its virtual-time measurement as
    a one-row CSV.

Optional on both: ``"request_id"`` (echoed back verbatim — the load
generator's correlation handle).

The parse step normalizes every field, so two requests that *resolve* to
the same work produce equal frozen dataclasses — the service's dedupe map
and result cache key on exactly that identity (for launches, combined
with ``Kernel.fingerprint()`` + the resolved launch config; see
:meth:`repro.serve.service.ExperimentService._dedupe_key`).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional, Tuple, Union

__all__ = [
    "ExperimentRequest",
    "LaunchRequest",
    "RequestError",
    "known_benchmarks",
    "known_experiments",
    "parse_request",
]

#: tenant ids become metric names (``serve.tenant.<id>.*``), so the
#: charset is restricted to what every metrics backend tolerates
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class RequestError(ValueError):
    """A malformed or unserviceable request (HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class ExperimentRequest:
    """Run one registry experiment and return its CSV."""

    tenant: str
    name: str
    fast: bool = False
    request_id: Optional[str] = None

    @property
    def kind(self) -> str:
        return "experiment"

    def work_key(self) -> Tuple:
        """Cross-tenant dedupe identity (tenant and request id excluded)."""
        return ("experiment", self.name, self.fast)


@dataclasses.dataclass(frozen=True)
class LaunchRequest:
    """Measure one benchmark kernel launch in virtual time."""

    tenant: str
    benchmark: str
    global_size: Optional[Tuple[int, ...]] = None  # None = paper default
    local_size: Optional[Tuple[int, ...]] = None
    coalesce: int = 1
    device: str = "cpu"
    request_id: Optional[str] = None

    @property
    def kind(self) -> str:
        return "launch"


def known_experiments():
    """Registry keys a request may name (import deferred: heavy)."""
    from ..harness.registry import EXPERIMENTS

    return EXPERIMENTS


def known_benchmarks():
    """Launchable benchmarks: every Table II + Table III application."""
    from ..tune import suite_benchmarks

    return suite_benchmarks()


def _require_tenant(doc: dict) -> str:
    tenant = doc.get("tenant")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise RequestError(
            "field 'tenant' must be a 1-64 char string of [A-Za-z0-9._-], "
            f"got {tenant!r}"
        )
    return tenant


def _opt_size(doc: dict, field: str) -> Optional[Tuple[int, ...]]:
    raw = doc.get(field)
    if raw is None:
        return None
    if (not isinstance(raw, (list, tuple)) or not raw
            or not all(isinstance(x, int) and x > 0 for x in raw)):
        raise RequestError(
            f"field {field!r} must be a non-empty list of positive "
            f"integers or null, got {raw!r}"
        )
    return tuple(int(x) for x in raw)


def _opt_request_id(doc: dict) -> Optional[str]:
    rid = doc.get("request_id")
    if rid is not None and not isinstance(rid, str):
        raise RequestError(f"field 'request_id' must be a string, got {rid!r}")
    return rid


def parse_request(doc) -> Union[ExperimentRequest, LaunchRequest]:
    """Validate one request document into its frozen dataclass.

    Raises :class:`RequestError` (mapped to HTTP 400) with a message
    precise enough to fix the request — including the known names when an
    experiment or benchmark lookup fails.
    """
    if not isinstance(doc, dict):
        raise RequestError(f"request must be a JSON object, got {type(doc).__name__}")
    kind = doc.get("kind")
    if kind not in ("experiment", "launch"):
        raise RequestError(
            f"field 'kind' must be 'experiment' or 'launch', got {kind!r}"
        )
    tenant = _require_tenant(doc)
    rid = _opt_request_id(doc)

    if kind == "experiment":
        name = doc.get("name")
        experiments = known_experiments()
        if name not in experiments:
            raise RequestError(
                f"unknown experiment {name!r}; known: "
                f"{', '.join(sorted(experiments))}"
            )
        fast = doc.get("fast", False)
        if not isinstance(fast, bool):
            raise RequestError(f"field 'fast' must be a boolean, got {fast!r}")
        return ExperimentRequest(tenant=tenant, name=name, fast=fast,
                                 request_id=rid)

    benchmark = doc.get("benchmark")
    benches = known_benchmarks()
    if benchmark not in benches:
        raise RequestError(
            f"unknown benchmark {benchmark!r}; known: "
            f"{', '.join(sorted(benches))}"
        )
    coalesce = doc.get("coalesce", 1)
    if not isinstance(coalesce, int) or coalesce < 1:
        raise RequestError(
            f"field 'coalesce' must be an integer >= 1, got {coalesce!r}"
        )
    device = doc.get("device", "cpu")
    if device not in ("cpu", "gpu"):
        raise RequestError(
            f"field 'device' must be 'cpu' or 'gpu', got {device!r}"
        )
    gs = _opt_size(doc, "global_size")
    ls = _opt_size(doc, "local_size")
    bench = benches[benchmark]
    launch_gs = gs or tuple(bench.default_global_sizes[0])
    if coalesce > 1 and launch_gs[0] % coalesce != 0:
        raise RequestError(
            f"global size {launch_gs[0]} is not divisible by coalesce "
            f"factor {coalesce}"
        )
    return LaunchRequest(
        tenant=tenant, benchmark=benchmark, global_size=gs, local_size=ls,
        coalesce=coalesce, device=device, request_id=rid,
    )


def launch_csv(req: LaunchRequest, measurement) -> str:
    """Render one launch measurement as a stable one-row CSV.

    Pure function of (request, measurement) so the service response and a
    serial re-measurement are byte-comparable — the soak test's
    equivalence check.
    """
    gs = "x".join(str(g) for g in (req.global_size or ()))
    ls = ("NULL" if req.local_size is None
          else "x".join(str(l) for l in req.local_size))
    header = ("benchmark,device,global_size,local_size,coalesce,"
              "mean_ns,invocations,total_virtual_ns")
    row = (
        f"{req.benchmark},{req.device},{gs or 'default'},{ls},"
        f"{req.coalesce},{measurement.mean_ns!r},{measurement.invocations},"
        f"{measurement.total_virtual_ns!r}"
    )
    return header + "\n" + row + "\n"
