"""Additional targeted tests for the analytical cache model internals."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelir.analysis import AccessInfo
from repro.simcpu.cachemodel import MemoryCostModel
from repro.simcpu.spec import XEON_E5645


def access(stride, count=1.0, is_store=False, loop_stride=0.0, uniform=False,
           itemsize=4, is_local=False, buffer="b"):
    return AccessInfo(
        buffer=buffer, is_store=is_store, is_local=is_local,
        count_per_item=count, itemsize=itemsize, vector_stride=stride,
        inner_loop_stride=loop_stride, uniform=uniform,
    )


class TestGatherModel:
    def setup_method(self):
        self.m = MemoryCostModel(XEON_E5645)

    def test_gather_amat_grows_with_footprint(self):
        amats = [self.m._gather_amat(fp)[0]
                 for fp in (32 << 10, 1 << 20, 8 << 20, 1 << 30)]
        assert amats == sorted(amats)

    def test_tiny_footprint_gather_is_cheap(self):
        amat, dram = self.m._gather_amat(16 << 10)
        assert amat == 0.0 and dram == 0.0  # fits L1

    def test_huge_footprint_gather_approaches_dram(self):
        amat, dram = self.m._gather_amat(1 << 34)
        s = XEON_E5645
        assert amat == pytest.approx(
            s.l2_latency + s.l3_latency + s.dram_latency, rel=0.05
        )
        assert dram == pytest.approx(s.line_bytes, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(fp=st.integers(1, 1 << 34))
    def test_gather_amat_bounded(self, fp):
        amat, dram = self.m._gather_amat(fp)
        s = XEON_E5645
        assert 0 <= amat <= s.l2_latency + s.l3_latency + s.dram_latency
        assert 0 <= dram <= s.line_bytes


class TestSourceLatency:
    def setup_method(self):
        self.m = MemoryCostModel(XEON_E5645)

    @settings(max_examples=40, deadline=None)
    @given(fp1=st.integers(1, 1 << 32), fp2=st.integers(1, 1 << 32))
    def test_monotone_in_footprint(self, fp1, fp2):
        lo, hi = sorted((fp1, fp2))
        assert self.m._source_latency(lo) <= self.m._source_latency(hi)


class TestEstimateComposition:
    def setup_method(self):
        self.m = MemoryCostModel(XEON_E5645)

    def _analysis_with(self, accesses):
        """A minimal KernelAnalysis stand-in carrying just the accesses."""
        from repro.kernelir.analysis import (
            KernelAnalysis, LaunchContext, OpCounts,
        )

        return KernelAnalysis(
            kernel_name="x",
            per_item=OpCounts(),
            critical_path_cycles=1.0,
            weighted_ops_cycles=1.0,
            accesses=accesses,
            divergent_flow=False,
            approximate=False,
            local_mem_bytes=0,
            uses_barrier=False,
            uses_atomics=False,
            ctx=LaunchContext((1024,), (64,)),
        )

    def test_counts_weight_costs(self):
        one = self._analysis_with([access(1.0, count=1)])
        ten = self._analysis_with([access(1.0, count=10, loop_stride=1.0)])
        fp = {"b": 1 << 30}
        e1 = self.m.estimate(one, fp)
        e10 = self.m.estimate(ten, fp)
        assert e10.dram_bytes == pytest.approx(10 * e1.dram_bytes)

    def test_sites_dict_aggregates(self):
        an = self._analysis_with(
            [access(1.0), access(1.0, is_store=True)]
        )
        est = self.m.estimate(an, {"b": 1 << 30})
        assert set(est.sites) == {"b[load]", "b[store]"}

    def test_local_accesses_free_regardless_of_count(self):
        an = self._analysis_with([access(1.0, count=1000, is_local=True)])
        est = self.m.estimate(an, {})
        assert est.amat_cycles == 0.0 and est.dram_bytes == 0.0

    def test_unknown_buffer_assumed_dram(self):
        an = self._analysis_with([access(1.0, buffer="mystery")])
        est = self.m.estimate(an, {})
        assert est.dram_bytes > 0
