"""Registry of all experiments, keyed by the paper artifact they regenerate."""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from .report import ExperimentResult
from .experiments import (
    conclusions,
    ext_affinity,
    ext_omp_apps,
    ext_portability,
    fig1_workitem_coalescing,
    fig2_parboil_coalescing,
    fig3_workgroup_size,
    fig4_blackscholes_wgsize,
    fig5_parboil_wgsize,
    fig6_ilp,
    fig7_transfer_api,
    fig8_parboil_transfer,
    fig9_affinity,
    fig10_vectorization,
    fig11_dependence_example,
    flags_no_effect,
    table1,
    table2_table3,
)

__all__ = ["EXPERIMENTS", "WorkerPoolError", "pool_map", "run_all",
           "run_experiment", "run_many"]


class WorkerPoolError(RuntimeError):
    """A worker pool died mid-run (Ctrl-C or a killed worker process).

    Carries whatever completed before the failure: ``results`` is ordered
    like the submitted argument tuples, with ``None`` placeholders for
    tasks that never finished, and ``completed`` counts the non-``None``
    entries.  Raised instead of hanging: the pool is torn down with every
    pending task cancelled before this propagates.
    """

    def __init__(self, message: str, results: List, cause: BaseException):
        completed = sum(1 for r in results if r is not None)
        super().__init__(
            f"{message} after {completed}/{len(results)} task(s) completed"
        )
        self.results = results
        self.completed = completed
        self.__cause__ = cause


def pool_map(fn, argtuples: Sequence[tuple], jobs: int = 1) -> List:
    """Apply a module-level ``fn`` to each argument tuple, optionally
    across ``jobs`` worker processes.

    The repo's process-pool idiom in one place: results come back in the
    order of ``argtuples`` regardless of completion order, so parallel
    and serial runs produce identical output, and ``fn`` must be a
    module-level callable (picklable) whose inputs are self-contained.
    Knobs that must reach workers travel via ``REPRO_*`` environment
    variables, snapshotted per batch so mid-process flips (the bench
    harness's cache-off phase) reach the long-lived workers too.

    Execution goes through :func:`repro.workers.process_pool` — persistent
    forked workers with batched dispatch and shared-memory result spill —
    so consecutive calls reuse warm processes instead of paying fork +
    import + dataset pickling per call.  The pool survives successful
    calls and ordinary task exceptions; it is torn down (and lazily
    rebuilt) only on interruption or worker death.

    Interruption and worker death are survivable: ``KeyboardInterrupt``
    and a broken pool (a worker killed by the OOM killer, ``os._exit``, a
    segfault) drain the pool immediately — every pending task is
    cancelled, nothing blocks on unfinished futures — and surface as
    :class:`WorkerPoolError` carrying the partial results.  Ordinary
    exceptions raised *by* ``fn`` keep their existing contract: they
    propagate unchanged (first-submitted wins) once the pool is drained.
    """
    from .. import workers

    argtuples = list(argtuples)
    if jobs <= 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    pool = workers.process_pool(min(jobs, len(argtuples)))
    results: List[Optional[object]] = [None] * len(argtuples)
    try:
        futures = pool.submit_batch(fn, argtuples)
        for i, f in enumerate(futures):
            results[i] = f.result()
        return results
    except (KeyboardInterrupt, BrokenProcessPool) as e:
        # Drain without waiting: cancel everything still queued and do NOT
        # join running workers (after Ctrl-C or a dead worker they may
        # never finish) — a clean, immediate teardown instead of a hang.
        pool.shutdown(wait=False, cancel_futures=True)
        reason = (
            "interrupted" if isinstance(e, KeyboardInterrupt)
            else "worker process died"
        )
        raise WorkerPoolError(f"worker pool {reason}", results, e) from e

EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2_table3.run_table2,
    "table3": table2_table3.run_table3,
    "fig1": fig1_workitem_coalescing.run,
    "fig2": fig2_parboil_coalescing.run,
    "fig3": fig3_workgroup_size.run,
    "fig4": fig4_blackscholes_wgsize.run,
    "fig5": fig5_parboil_wgsize.run,
    "fig6": fig6_ilp.run,
    "fig7": fig7_transfer_api.run,
    "fig8": fig8_parboil_transfer.run,
    "fig9": fig9_affinity.run,
    "fig10": fig10_vectorization.run,
    "fig11": fig11_dependence_example.run,
    "flags": flags_no_effect.run,
    # beyond the paper: its Section III-E proposal, implemented
    "ext_affinity": ext_affinity.run,
    # beyond the paper: Section III-F porting applied to the whole suite
    "ext_omp_apps": ext_omp_apps.run,
    # beyond the paper: do the findings survive an AVX-class CPU?
    "ext_portability": ext_portability.run,
    # Section V: the five conclusions, auto-verified
    "conclusions": conclusions.run,
}


def run_experiment(name: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig6"``).

    Every kernel launch the experiment measures is additionally run through
    the static verifier; the aggregated diagnostic counts are appended to
    the result's notes.  With a tracer installed (``--trace``) the run
    gets a wall-clock span and its wall time and verifier tallies land in
    the metrics registry; results are unaffected either way.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    import contextlib
    import time

    from ..obs import tracer as obs_tracer
    from ..obs.metrics import REGISTRY
    from .runner import collect_diagnostics

    tracer = obs_tracer.ACTIVE
    span = (
        tracer.wall_span(f"experiment {name}", "harness", {"fast": fast})
        if tracer is not None else contextlib.nullcontext()
    )
    t0 = time.perf_counter()
    with span, collect_diagnostics() as tally:
        result = fn(fast)
    if tracer is not None:
        REGISTRY.observe_experiment(name, time.perf_counter() - t0)
        REGISTRY.absorb_verifier_tally(tally)
    if tally.launches:
        result.notes.append(tally.summary())
    return result


def _run_one(name: str, fast: bool) -> ExperimentResult:
    """Module-level wrapper so worker processes can unpickle the task."""
    return run_experiment(name, fast)


def run_many(
    names: Sequence[str], fast: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Run several experiments, optionally across ``jobs`` worker processes.

    Results always come back in the order of ``names`` regardless of which
    worker finishes first, so parallel and serial runs emit identical
    reports.  Every experiment is deterministic in virtual time and builds
    its own device models, so processes share nothing but code.

    Ctrl-C and worker death raise :class:`WorkerPoolError` (with partial
    results attached) instead of hanging the pool — long-running callers
    like ``repro serve`` rely on this for clean shutdown.
    """
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown!r}; known: {sorted(EXPERIMENTS)}"
        )
    return pool_map(_run_one, [(name, fast) for name in names], jobs)


def run_all(fast: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    """Run every experiment in paper order."""
    return run_many(list(EXPERIMENTS), fast, jobs)
