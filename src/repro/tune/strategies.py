"""Pluggable search strategies over a knob space.

Every strategy drives the same oracle — ``evaluate(points, fidelity=...)``
returns one result dict per point, each carrying a ``score`` to minimize
— and returns the full-fidelity ``(point, result)`` pairs it measured.
The oracle is deterministic (virtual time) and content-addressed, so a
strategy re-run costs nothing for points it has seen before; strategies
therefore optimize *coverage per evaluation*, not statistical noise.

* ``grid`` — exhaustive sweep of the space (the reference answer);
* ``random`` — seeded uniform sample without replacement, for spaces too
  large to enumerate under the budget;
* ``hillclimb`` — start from the paper default and greedily follow the
  best single-knob move until no neighbor improves (cheap, exploits the
  near-convexity of the workgroup-size curve the paper's Figure 3 shows);
* ``shalving`` — successive halving over *problem-size fidelities*: score
  every candidate on a shrunken NDRange, keep the better half, grow the
  NDRange, repeat until the survivors run at full size.  Low-fidelity
  rungs are cheap and content-addressed like everything else.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional, Sequence, Tuple

from .space import KnobPoint, KnobSpace

__all__ = ["STRATEGIES"]

Result = Tuple[KnobPoint, dict]


def _dedupe(points: Sequence[KnobPoint]) -> List[KnobPoint]:
    return list(dict.fromkeys(points))


def _cap(points: List[KnobPoint], budget: Optional[int]) -> List[KnobPoint]:
    return points if budget is None else points[:max(1, budget)]


def grid(space: KnobSpace, oracle, default: KnobPoint,
         budget: Optional[int], seed: int) -> List[Result]:
    points = _cap(_dedupe([default] + space.points()), budget)
    return list(zip(points, oracle.evaluate(points)))


def random(space: KnobSpace, oracle, default: KnobPoint,
           budget: Optional[int], seed: int) -> List[Result]:
    pool = [p for p in _dedupe(space.points()) if p != default]
    n = len(pool) if budget is None else max(0, budget - 1)
    rng = _random.Random(seed)
    sample = rng.sample(pool, min(n, len(pool)))
    points = [default] + sample
    return list(zip(points, oracle.evaluate(points)))


def hillclimb(space: KnobSpace, oracle, default: KnobPoint,
              budget: Optional[int], seed: int) -> List[Result]:
    limit = budget if budget is not None else space.size()
    seen: dict = {}

    def evaluate(points: List[KnobPoint]) -> None:
        fresh = [p for p in points if p not in seen][:max(0, limit - len(seen))]
        if fresh:
            for p, r in zip(fresh, oracle.evaluate(fresh)):
                seen[p] = r

    evaluate([default])
    current = default
    while len(seen) < limit:
        moves = [p for p in space.neighbors(current) if p not in seen]
        if not moves:
            break
        evaluate(moves)
        best = min(seen, key=lambda p: seen[p]["score"])
        if best == current:
            break
        current = best
    return list(seen.items())


def shalving(space: KnobSpace, oracle, default: KnobPoint,
             budget: Optional[int], seed: int) -> List[Result]:
    survivors = _cap(_dedupe([default] + space.points()), budget)
    rungs = oracle.rungs  # low fidelity first; the last rung is full size
    for fidelity in range(len(rungs) - 1):
        if len(survivors) <= 1:
            break
        scored = list(zip(survivors, oracle.evaluate(survivors,
                                                     fidelity=fidelity)))
        scored.sort(key=lambda pr: (pr[1]["score"],
                                    survivors.index(pr[0])))
        survivors = [p for p, _ in scored[:max(1, (len(scored) + 1) // 2)]]
    return list(zip(survivors, oracle.evaluate(survivors)))


STRATEGIES = {
    "grid": grid,
    "random": random,
    "hillclimb": hillclimb,
    "shalving": shalving,
}
