"""Thread coarsening (:mod:`repro.kernelir.coarsen`).

The transform must be bit-identical to the interpreter — buffers *and*
dynamic counters — including masked tails on grids that do not divide by
the factor, and must refuse every kernel shape whose semantics depend on
workgroup structure or execution order.
"""

import dataclasses

import numpy as np
import pytest

from repro.kernelir import ast as ir
from repro.kernelir import compile as jit
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.coarsen import (
    CoarsenError,
    choose_factor,
    coarsen_blockers,
    coarsen_kernel,
)
from repro.kernelir.interp import Interpreter
from repro.kernelir.types import F32, I64


def _scale_kernel(name="cg_scale"):
    kb = KernelBuilder(name)
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    c = kb.scalar("c", F32)
    gid = kb.global_id(0)
    out[gid] = a[gid] * c
    return kb.finish()


def _divergent_kernel(name="cg_div"):
    """A branchy kernel with per-copy private state and a loop."""
    kb = KernelBuilder(name)
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    c = kb.scalar("c", F32)
    gid = kb.global_id(0)
    t = kb.let("t", a[gid] * c)
    acc = kb.let("acc", kb.f32(0.0))
    with kb.loop("j", 0, 3) as j:
        kb.let(acc.name, acc + t * (kb.cast(j, F32) + kb.f32(1.0)))
    with kb.if_(a[gid] > kb.f32(0.0)):
        out[gid] = acc + t
    with kb.else_():
        out[gid] = acc - t
    return kb.finish()


def _interp_ref(kernel, n, buffers, scalars):
    bufs = {k: v.copy() for k, v in buffers.items()}
    res = Interpreter().launch(kernel, (n,), None, buffers=bufs,
                               scalars=dict(scalars), count_ops=True)
    return bufs, dataclasses.asdict(res.counters)


class TestDifferential:
    @pytest.mark.parametrize("n", [1000, 1003, 4096])
    @pytest.mark.parametrize("factor", [2, 4, 7])
    def test_forced_coarsen_bit_identical(self, n, factor):
        kernel = _divergent_kernel(f"cg_diff{n}x{factor}")
        rng = np.random.default_rng(7)
        buffers = {
            "a": rng.uniform(-4, 4, n).astype(np.float32),
            "out": np.zeros(n, np.float32),
        }
        scalars = {"c": 1.5}
        ref_bufs, ref_counters = _interp_ref(kernel, n, buffers, scalars)

        ck = jit.get_compiled(kernel, count_ops=True)
        assert ck is not None
        plan = jit.get_fused_plan(ck, (n,), scalars=scalars, coarsen=factor)
        assert plan.cck is not None, "forced coarsening should engage"
        bufs = {k: v.copy() for k, v in buffers.items()}
        res = plan.launch(bufs, dict(scalars))
        # the launch reports the ORIGINAL NDRange, not the merged one
        assert res.global_size == (n,)
        for name in ref_bufs:
            np.testing.assert_array_equal(ref_bufs[name], bufs[name])
        assert dataclasses.asdict(res.counters) == ref_counters

    def test_coarsened_launch_counter(self):
        kernel = _scale_kernel("cg_counter")
        ck = jit.get_compiled(kernel)
        plan = jit.get_fused_plan(ck, (512,), coarsen=2)
        assert plan.cck is not None
        before = jit.compile_stats()["launches"]["coarsened"]
        plan.launch({"a": np.ones(512, np.float32),
                     "out": np.zeros(512, np.float32)}, {"c": 2.0})
        assert jit.compile_stats()["launches"]["coarsened"] == before + 1


class TestLegality:
    def test_barrier_kernel_refused(self):
        kb = KernelBuilder("cg_bar")
        out = kb.buffer("out", F32, access="w")
        tile = kb.local_array("tile", 16, F32)
        lid = kb.local_id(0)
        tile[lid] = kb.f32(1.0)
        kb.barrier()
        out[kb.global_id(0)] = tile[lid]
        kernel = kb.finish()
        assert coarsen_blockers(kernel) is not None
        with pytest.raises(CoarsenError):
            coarsen_kernel(kernel, 2)
        assert choose_factor(kernel, 1 << 20) == 1

    def test_group_id_reader_refused(self):
        kb = KernelBuilder("cg_gid")
        out = kb.buffer("out", F32, access="w")
        out[kb.global_id(0)] = kb.cast(kb.group_id(0), F32)
        kernel = kb.finish()
        assert "group" in (coarsen_blockers(kernel) or "")

    def test_reserved_name_refused(self):
        kb = KernelBuilder("cg_res")
        out = kb.buffer("out", F32, access="w")
        kb.let("__cg_t", kb.f32(1.0))
        out[kb.global_id(0)] = kb.f32(0.0)
        kernel = kb.finish()
        assert "reserved" in (coarsen_blockers(kernel) or "")

    def test_shadowed_scalar_refused(self):
        kb = KernelBuilder("cg_shadow")
        out = kb.buffer("out", F32, access="w")
        c = kb.scalar("c", F32)
        kb.let("c", kb.f32(2.0))
        out[kb.global_id(0)] = c
        kernel = kb.finish()
        assert "shadows" in (coarsen_blockers(kernel) or "")

    def test_legal_kernel_has_no_blockers(self):
        assert coarsen_blockers(_scale_kernel("cg_ok")) is None


class TestHeuristic:
    def test_cheap_straight_line_kernel_coarsens(self):
        # 3 counted ops -> 18 ns/item, well under the 40 ns overhead
        assert choose_factor(_scale_kernel("cg_h1"), 16384) == 4

    def test_control_flow_disables_heuristic(self):
        assert choose_factor(_divergent_kernel("cg_h2"), 16384) == 1

    def test_indivisible_grid_backs_off(self):
        # 1000 % 4 == 0 but 250 coarsened items < 2048 -> back off to 1
        assert choose_factor(_scale_kernel("cg_h3"), 1000) == 1

    def test_heuristic_defers_to_parallel_chunking(self):
        # grids big enough to chunk across workers stay uncoarsened: the
        # coarsened plan is serial and would forfeit the bigger win
        kernel = _scale_kernel("cg_h4")
        ck = jit.get_compiled(kernel)
        plan = jit.get_fused_plan(ck, (1 << 17,))
        assert plan.cck is None
        assert plan.parallel

    def test_heuristic_engages_below_chunk_threshold(self):
        kernel = _scale_kernel("cg_h5")
        ck = jit.get_compiled(kernel)
        plan = jit.get_fused_plan(ck, (16384,))
        assert plan.cck is not None


class TestTransformShape:
    def test_coarsened_kernel_structure(self):
        kernel = _scale_kernel("cg_shape")
        coarse = coarsen_kernel(kernel, 4)
        assert coarse.name == "cg_shape__cg4"
        assert coarse.scalar_params[-1].name == "__cg_n0"
        assert coarse.scalar_params[-1].dtype is I64
        # K guarded copies, each preceded by its gid reconstruction
        ifs = [s for s in coarse.body if isinstance(s, ir.If)]
        assert len(ifs) == 4
        assert len(coarse.synthetic_op_ids) == 8

    def test_factor_below_two_rejected(self):
        with pytest.raises(ValueError):
            coarsen_kernel(_scale_kernel("cg_f1"), 1)
