"""``repro.serve`` — the multi-tenant experiment service.

The paper's experiments are one-shot CLI runs; this package turns the
runtime into long-lived infrastructure (the ROADMAP's "millions of users"
north star): a daemon accepts launch/experiment requests over HTTP (JSON
in, CSV + per-request trace out), executes them on the existing engine
substrate — per-session :mod:`repro.minicl` contexts, the OoO event-DAG
scheduler, the :mod:`repro.workers` pools — and shares every expensive
artifact across tenants: the in-memory ``LaunchPlanCache`` families, the
JIT code cache, and the persistent on-disk cache of PR 7 (the pocl
insight: a shared, persistent kernel cache is what makes a runtime viable
as a service rather than a per-process tool).

Layers, bottom-up:

* :mod:`repro.serve.protocol` — the request/response schema (validation,
  dedupe keys, stable CSV rendering);
* :mod:`repro.serve.service`  — :class:`ExperimentService`: per-tenant
  sessions, cross-tenant request deduplication keyed on
  ``Kernel.fingerprint()`` + resolved launch config, fair round-robin
  scheduling over bounded per-tenant queues, admission control with
  retry-after backpressure, per-tenant metrics through :mod:`repro.obs`;
* :mod:`repro.serve.http`     — the thin HTTP front-end
  (``POST /v1/submit``, ``GET /healthz``, ``GET /v1/metrics``);
* :mod:`repro.serve.loadgen`  — the load generator / replay client used
  by ``python -m repro serve --replay``, CI's ``serve-smoke`` job and the
  soak test.

Everything is protocol-agnostic below :mod:`repro.serve.http`:
:class:`ExperimentService` is directly callable in-process (that is how
the unit tests drive it), so another transport (a line-delimited-JSON
socket, gRPC) is one small adapter away.

See ``docs/SERVE.md`` for the wire schema and the operations runbook.
"""

from __future__ import annotations

from .protocol import (
    ExperimentRequest,
    LaunchRequest,
    RequestError,
    parse_request,
)
from .service import (
    BackpressureError,
    ExecutionError,
    ExperimentService,
    ServeConfig,
    ServiceClosedError,
    reset_serve_stats,
    serve_stats,
)
from .http import ExperimentHTTPServer, start_server

__all__ = [
    "BackpressureError",
    "ExecutionError",
    "ExperimentHTTPServer",
    "ExperimentRequest",
    "ExperimentService",
    "LaunchRequest",
    "RequestError",
    "ServeConfig",
    "ServiceClosedError",
    "parse_request",
    "reset_serve_stats",
    "serve_stats",
    "start_server",
]
