"""Abstract syntax tree for the SIMT kernel IR.

A kernel is a straight-line list of statements (with structured ``For``/``If``
nesting) executed once per *workitem* over an NDRange, exactly like an OpenCL
C kernel.  Expressions are side-effect free except ``AtomicAdd``.

The same IR doubles as the representation of an OpenMP ``parallel for`` body:
the OpenMP runtime simply interprets ``GlobalId(0)`` as the loop induction
variable (this mirrors the paper's porting methodology, Section III-F: "We map
multiple workitems on OpenCL to a loop to port OpenCL kernels to their OpenMP
counterparts").
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterator, Optional, Sequence, Tuple, Union

from .types import (
    BOOL,
    DType,
    F32,
    F64,
    I32,
    I64,
    common_type,
    promote,
)

__all__ = [
    "Expr",
    "Const",
    "GlobalId",
    "LocalId",
    "GroupId",
    "GlobalSize",
    "LocalSize",
    "NumGroups",
    "Var",
    "BinOp",
    "UnOp",
    "Call",
    "Load",
    "LoadLocal",
    "Select",
    "Cast",
    "Stmt",
    "Assign",
    "Store",
    "StoreLocal",
    "AtomicAdd",
    "AtomicAddLocal",
    "For",
    "If",
    "Barrier",
    "BufferParam",
    "ScalarParam",
    "LocalArray",
    "Kernel",
    "ARITH_OPS",
    "CMP_OPS",
    "INTRINSICS",
    "walk_exprs",
    "walk_stmts",
    "as_expr",
]

# Binary operators understood by the interpreter / analyses.
ARITH_OPS = frozenset({"+", "-", "*", "/", "//", "%", "min", "max", "&", "|", "^", "<<", ">>"})
CMP_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
LOGIC_OPS = frozenset({"and", "or"})

#: intrinsic name -> (arity, result is float)
INTRINSICS = {
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "rsqrt": 1,
    "fabs": 1,
    "sin": 1,
    "cos": 1,
    "floor": 1,
    "erf": 1,
    "pow": 2,
    "mad": 3,  # a * b + c
    "fma": 3,
}


class Expr:
    """Base class of all expressions.

    Operator overloads build ``BinOp``/``UnOp`` nodes so that benchmark kernels
    read naturally (``out[i] = a[i] * a[i]`` style via the builder).
    """

    dtype: DType

    # -- arithmetic -------------------------------------------------------
    def _bin(self, op: str, other, reflected: bool = False) -> "BinOp":
        other = as_expr(other)
        if reflected:
            return BinOp(op, other, self)
        return BinOp(op, self, other)

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, True)

    def __floordiv__(self, o):
        return self._bin("//", o)

    def __rfloordiv__(self, o):
        return self._bin("//", o, True)

    def __mod__(self, o):
        return self._bin("%", o)

    def __rmod__(self, o):
        return self._bin("%", o, True)

    def __and__(self, o):
        return self._bin("&", o)

    def __or__(self, o):
        return self._bin("|", o)

    def __xor__(self, o):
        return self._bin("^", o)

    def __lshift__(self, o):
        return self._bin("<<", o)

    def __rshift__(self, o):
        return self._bin(">>", o)

    def __neg__(self):
        return UnOp("neg", self)

    # -- comparisons ------------------------------------------------------
    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    def eq(self, o) -> "BinOp":
        """Element-wise equality (``==`` is kept for Python identity use)."""
        return self._bin("==", o)

    def ne(self, o) -> "BinOp":
        return self._bin("!=", o)

    # -- structure --------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()

    def pretty(self) -> str:
        raise NotImplementedError


def as_expr(v) -> Expr:
    """Coerce a Python scalar into a ``Const``; pass expressions through."""
    if isinstance(v, Expr):
        return v
    return Const(v)


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Const(Expr):
    """A literal constant.  ``dtype`` is inferred unless given."""

    value: object
    dtype: DType = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.dtype is None:
            if isinstance(self.value, bool):
                object.__setattr__(self, "dtype", BOOL)
            elif isinstance(self.value, int):
                object.__setattr__(self, "dtype", I64)
            elif isinstance(self.value, float):
                object.__setattr__(self, "dtype", F32)
            else:
                raise TypeError(f"bad constant {self.value!r}")

    def pretty(self) -> str:
        return repr(self.value)


class _IdBase(Expr):
    """Common base for NDRange id/size queries (all integer-typed)."""

    dtype = I64
    opencl_name = "?"

    def __init__(self, dim: int = 0):
        if dim not in (0, 1, 2):
            raise ValueError(f"NDRange dimension must be 0, 1 or 2, got {dim}")
        self.dim = dim

    def pretty(self) -> str:
        return f"{self.opencl_name}({self.dim})"

    def __eq__(self, other):
        return type(self) is type(other) and self.dim == other.dim

    def __hash__(self):
        return hash((type(self).__name__, self.dim))


class GlobalId(_IdBase):
    """``get_global_id(dim)``."""

    opencl_name = "get_global_id"


class LocalId(_IdBase):
    """``get_local_id(dim)``."""

    opencl_name = "get_local_id"


class GroupId(_IdBase):
    """``get_group_id(dim)``."""

    opencl_name = "get_group_id"


class GlobalSize(_IdBase):
    """``get_global_size(dim)``."""

    opencl_name = "get_global_size"


class LocalSize(_IdBase):
    """``get_local_size(dim)``."""

    opencl_name = "get_local_size"


class NumGroups(_IdBase):
    """``get_num_groups(dim)``."""

    opencl_name = "get_num_groups"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Var(Expr):
    """Reference to a per-workitem variable or scalar kernel parameter."""

    name: str
    dtype: DType

    def pretty(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in ARITH_OPS | CMP_OPS | LOGIC_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        if self.op in CMP_OPS or self.op in LOGIC_OPS:
            return BOOL
        if self.op in ("<<", ">>", "&", "|", "^"):
            return self.lhs.dtype
        return promote(self.lhs.dtype, self.rhs.dtype)

    def children(self):
        return (self.lhs, self.rhs)

    def pretty(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs.pretty()}, {self.rhs.pretty()})"
        return f"({self.lhs.pretty()} {self.op} {self.rhs.pretty()})"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in ("neg", "not"):
            raise ValueError(f"unknown unary op {self.op!r}")

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return BOOL if self.op == "not" else self.operand.dtype

    def children(self):
        return (self.operand,)

    def pretty(self) -> str:
        return f"{self.op}({self.operand.pretty()})"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Call(Expr):
    """Intrinsic math function call (exp, sqrt, mad, ...)."""

    fn: str
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if self.fn not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {self.fn!r}")
        if len(self.args) != INTRINSICS[self.fn]:
            raise ValueError(
                f"{self.fn} expects {INTRINSICS[self.fn]} args, got {len(self.args)}"
            )
        object.__setattr__(self, "args", tuple(as_expr(a) for a in self.args))

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        dt = common_type(*(a.dtype for a in self.args))
        return dt if dt.is_float else F32

    def children(self):
        return self.args

    def pretty(self) -> str:
        return f"{self.fn}({', '.join(a.pretty() for a in self.args)})"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Load(Expr):
    """Read ``buffer[index]`` from a global-memory buffer parameter."""

    buffer: str
    index: Expr
    dtype: DType

    def children(self):
        return (self.index,)

    def pretty(self) -> str:
        return f"{self.buffer}[{self.index.pretty()}]"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class LoadLocal(Expr):
    """Read from a per-workgroup ``__local`` array."""

    array: str
    index: Expr
    dtype: DType

    def children(self):
        return (self.index,)

    def pretty(self) -> str:
        return f"local {self.array}[{self.index.pretty()}]"


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Select(Expr):
    """Ternary ``cond ? a : b`` (OpenCL ``select``)."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return promote(self.if_true.dtype, self.if_false.dtype)

    def children(self):
        return (self.cond, self.if_true, self.if_false)

    def pretty(self) -> str:
        return (
            f"select({self.cond.pretty()}, {self.if_true.pretty()}, "
            f"{self.if_false.pretty()})"
        )


@dataclasses.dataclass(frozen=True, repr=False, eq=False)
class Cast(Expr):
    operand: Expr
    dtype: DType

    def children(self):
        return (self.operand,)

    def pretty(self) -> str:
        return f"({self.dtype}){self.operand.pretty()}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of all statements."""

    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()


@dataclasses.dataclass(repr=False)
class Assign(Stmt):
    """Assign a per-workitem variable (declares it on first use)."""

    name: str
    value: Expr

    def __post_init__(self):
        self.value = as_expr(self.value)

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + f"{self.name} = {self.value.pretty()}"


@dataclasses.dataclass(repr=False)
class Store(Stmt):
    """``buffer[index] = value`` to global memory."""

    buffer: str
    index: Expr
    value: Expr

    def __post_init__(self):
        self.index = as_expr(self.index)
        self.value = as_expr(self.value)

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + f"{self.buffer}[{self.index.pretty()}] = {self.value.pretty()}"


@dataclasses.dataclass(repr=False)
class StoreLocal(Stmt):
    """Store to a per-workgroup ``__local`` array."""

    array: str
    index: Expr
    value: Expr

    def __post_init__(self):
        self.index = as_expr(self.index)
        self.value = as_expr(self.value)

    def pretty(self, indent: int = 0) -> str:
        return (
            "  " * indent
            + f"local {self.array}[{self.index.pretty()}] = {self.value.pretty()}"
        )


@dataclasses.dataclass(repr=False)
class AtomicAdd(Stmt):
    """``atomic_add(&buffer[index], value)`` on global memory."""

    buffer: str
    index: Expr
    value: Expr

    def __post_init__(self):
        self.index = as_expr(self.index)
        self.value = as_expr(self.value)

    def pretty(self, indent: int = 0) -> str:
        return (
            "  " * indent
            + f"atomic_add(&{self.buffer}[{self.index.pretty()}], {self.value.pretty()})"
        )


@dataclasses.dataclass(repr=False)
class AtomicAddLocal(Stmt):
    """``atomic_add`` on a ``__local`` array."""

    array: str
    index: Expr
    value: Expr

    def __post_init__(self):
        self.index = as_expr(self.index)
        self.value = as_expr(self.value)

    def pretty(self, indent: int = 0) -> str:
        return (
            "  " * indent
            + f"atomic_add(&local {self.array}[{self.index.pretty()}], {self.value.pretty()})"
        )


@dataclasses.dataclass(repr=False)
class For(Stmt):
    """Counted loop ``for (var = start; var < stop; var += step)``.

    Bounds may be per-workitem expressions; the interpreter executes the loop
    lock-step with an activity mask, so divergent trip counts are legal (they
    simply cost extra masked iterations).
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list

    def __post_init__(self):
        self.start = as_expr(self.start)
        self.stop = as_expr(self.stop)
        self.step = as_expr(self.step)
        # Keep the caller's list object: the builder appends to it after
        # constructing the node (context-manager pattern).
        if not isinstance(self.body, list):
            self.body = list(self.body)

    def pretty(self, indent: int = 0) -> str:
        head = (
            "  " * indent
            + f"for {self.var} in [{self.start.pretty()}, {self.stop.pretty()}) "
            + f"step {self.step.pretty()}:"
        )
        return "\n".join([head] + [s.pretty(indent + 1) for s in self.body])


@dataclasses.dataclass(repr=False)
class If(Stmt):
    cond: Expr
    then_body: list
    else_body: list = dataclasses.field(default_factory=list)

    def __post_init__(self):
        self.cond = as_expr(self.cond)
        # Keep the caller's list objects (see For.__post_init__).
        if not isinstance(self.then_body, list):
            self.then_body = list(self.then_body)
        if not isinstance(self.else_body, list):
            self.else_body = list(self.else_body)

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"if {self.cond.pretty()}:"]
        lines += [s.pretty(indent + 1) for s in self.then_body]
        if self.else_body:
            lines.append("  " * indent + "else:")
            lines += [s.pretty(indent + 1) for s in self.else_body]
        return "\n".join(lines)


@dataclasses.dataclass(repr=False)
class Barrier(Stmt):
    """``barrier(CLK_LOCAL_MEM_FENCE)`` — workgroup-wide synchronization."""

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + "barrier()"


# ---------------------------------------------------------------------------
# Kernel container
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BufferParam:
    """A ``__global`` pointer kernel argument.

    ``access`` is one of ``"r"``, ``"w"``, ``"rw"`` and corresponds to how the
    *kernel* uses the buffer (the paper's read-only/write-only discussion).
    """

    name: str
    dtype: DType
    access: str = "rw"

    def __post_init__(self):
        if self.access not in ("r", "w", "rw"):
            raise ValueError(f"bad access {self.access!r}")


@dataclasses.dataclass(frozen=True)
class ScalarParam:
    """A scalar (pass-by-value) kernel argument."""

    name: str
    dtype: DType


@dataclasses.dataclass(frozen=True)
class LocalArray:
    """A ``__local`` array declared inside the kernel, sized per workgroup."""

    name: str
    dtype: DType
    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("local array size must be positive")

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


@dataclasses.dataclass
class Kernel:
    """A complete kernel: signature + local arrays + body.

    The kernel is dimension-agnostic; the NDRange shape is supplied at launch
    time, exactly like ``clEnqueueNDRangeKernel``.
    """

    name: str
    params: list
    local_arrays: list
    body: list
    work_dim: int = 1
    #: verifier rule ids (e.g. "R-RACE-GLOBAL") silenced for this kernel;
    #: see :mod:`repro.kernelir.verify`
    suppressions: tuple = ()

    def __post_init__(self):
        if not (1 <= self.work_dim <= 3):
            raise ValueError("work_dim must be 1, 2 or 3")
        names = [p.name for p in self.params] + [a.name for a in self.local_arrays]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate parameter/local names in kernel {self.name}")
        self._validate_references()

    # -- convenience accessors -------------------------------------------
    @property
    def buffer_params(self) -> list:
        return [p for p in self.params if isinstance(p, BufferParam)]

    @property
    def scalar_params(self) -> list:
        return [p for p in self.params if isinstance(p, ScalarParam)]

    def param(self, name: str):
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def local_array(self, name: str) -> LocalArray:
        for a in self.local_arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    @property
    def local_mem_bytes(self) -> int:
        """Per-workgroup __local memory usage in bytes."""
        return sum(a.nbytes for a in self.local_arrays)

    def fingerprint(self) -> str:
        """Stable structural identity of this kernel, for launch-plan caches.

        Two kernels built independently from the same IR (the harness
        factories rebuild kernel objects per call) share a fingerprint, so
        caches keyed on it hit across rebuilds.  Computed once and memoized;
        kernels must not be mutated after first use (the builder finishes
        construction before any launch).
        """
        fp = self.__dict__.get("_fingerprint")
        if fp is None:
            h = hashlib.sha1()
            sig = (
                self.name,
                self.work_dim,
                tuple(self.suppressions),
                tuple(
                    (p.name, str(p.dtype), getattr(p, "access", None))
                    for p in self.params
                ),
                tuple((a.name, str(a.dtype), a.size) for a in self.local_arrays),
            )
            h.update(repr(sig).encode())
            h.update(self.pretty().encode())
            fp = h.hexdigest()
            self.__dict__["_fingerprint"] = fp
        return fp

    @property
    def uses_barrier(self) -> bool:
        return any(isinstance(s, Barrier) for s in walk_stmts(self.body))

    @property
    def uses_local_memory(self) -> bool:
        return bool(self.local_arrays)

    @property
    def uses_atomics(self) -> bool:
        return any(
            isinstance(s, (AtomicAdd, AtomicAddLocal)) for s in walk_stmts(self.body)
        )

    # -- validation -------------------------------------------------------
    def _validate_references(self) -> None:
        buffers = {p.name for p in self.buffer_params}
        locals_ = {a.name for a in self.local_arrays}
        writable = {p.name for p in self.buffer_params if "w" in p.access}
        readable = {p.name for p in self.buffer_params if "r" in p.access}
        for stmt in walk_stmts(self.body):
            for e in _stmt_exprs(stmt):
                for node in walk_exprs(e):
                    if isinstance(node, Load):
                        if node.buffer not in buffers:
                            raise ValueError(
                                f"kernel {self.name}: load from unknown buffer "
                                f"{node.buffer!r}"
                            )
                        if node.buffer not in readable:
                            raise ValueError(
                                f"kernel {self.name}: buffer {node.buffer!r} is "
                                f"write-only but is read"
                            )
                    if isinstance(node, LoadLocal) and node.array not in locals_:
                        raise ValueError(
                            f"kernel {self.name}: unknown local array {node.array!r}"
                        )
            if isinstance(stmt, (Store, AtomicAdd)):
                if stmt.buffer not in buffers:
                    raise ValueError(
                        f"kernel {self.name}: store to unknown buffer {stmt.buffer!r}"
                    )
                if stmt.buffer not in writable:
                    raise ValueError(
                        f"kernel {self.name}: buffer {stmt.buffer!r} is read-only "
                        f"but is written"
                    )
            if isinstance(stmt, (StoreLocal, AtomicAddLocal)) and stmt.array not in locals_:
                raise ValueError(
                    f"kernel {self.name}: unknown local array {stmt.array!r}"
                )

    def pretty(self) -> str:
        sig = ", ".join(
            (f"__global {p.dtype}* {p.name} ({p.access})" if isinstance(p, BufferParam)
             else f"{p.dtype} {p.name}")
            for p in self.params
        )
        lines = [f"__kernel void {self.name}({sig})"]
        for a in self.local_arrays:
            lines.append(f"  __local {a.dtype} {a.name}[{a.size}];")
        lines += [s.pretty(1) for s in self.body]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Kernel {self.name} ({len(self.params)} params)>"


# ---------------------------------------------------------------------------
# Walkers
# ---------------------------------------------------------------------------


def walk_exprs(e: Expr) -> Iterator[Expr]:
    """Depth-first iteration over an expression tree, including ``e``."""
    yield e
    for c in e.children():
        yield from walk_exprs(c)


def _stmt_exprs(s: Stmt) -> Tuple[Expr, ...]:
    """The expressions directly owned by a statement (non-recursive)."""
    if isinstance(s, Assign):
        return (s.value,)
    if isinstance(s, (Store, AtomicAdd)):
        return (s.index, s.value)
    if isinstance(s, (StoreLocal, AtomicAddLocal)):
        return (s.index, s.value)
    if isinstance(s, For):
        return (s.start, s.stop, s.step)
    if isinstance(s, If):
        return (s.cond,)
    return ()


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Depth-first iteration over a statement list, entering loop/if bodies."""
    for s in body:
        yield s
        if isinstance(s, For):
            yield from walk_stmts(s.body)
        elif isinstance(s, If):
            yield from walk_stmts(s.then_body)
            yield from walk_stmts(s.else_body)


def stmt_exprs(s: Stmt) -> Tuple[Expr, ...]:
    """Public alias for the expressions directly owned by a statement."""
    return _stmt_exprs(s)
