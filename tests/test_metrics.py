"""Tests for the programmer-guideline metrics (roofline, kernel report)."""

import numpy as np
import pytest

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.metrics import kernel_report, roofline
from repro.simcpu.spec import XEON_E5645
from repro.suite import build_ilp_kernel
from repro.suite.simple.square import build_square_kernel
from repro.suite.simple.blackscholes import build_blackscholes_kernel


def _analysis(kernel, gsize=(4096,), lsize=(64,), **scalars):
    return analyze_kernel(kernel, LaunchContext(gsize, lsize, scalars))


class TestRoofline:
    def test_memory_bound_kernel(self):
        an = _analysis(build_square_kernel())
        r = roofline(an, 5.0, peak_gflops=230.4, bandwidth_gbps=51.2, device="CPU")
        assert r.memory_bound  # 1 flop / 8 bytes << ridge
        assert r.attainable_gflops == pytest.approx(51.2 / 8, rel=0.01)
        assert 0 < r.efficiency <= 1.0 or r.achieved_gflops < r.attainable_gflops

    def test_compute_bound_kernel(self):
        an = _analysis(build_ilp_kernel(4))
        r = roofline(an, 100.0, peak_gflops=230.4, bandwidth_gbps=51.2, device="CPU")
        assert not r.memory_bound  # thousands of flops per 8 bytes
        assert r.attainable_gflops == 230.4

    def test_ridge_point(self):
        an = _analysis(build_square_kernel())
        r = roofline(an, 1.0, peak_gflops=100.0, bandwidth_gbps=50.0, device="X")
        assert r.ridge_point == 2.0


class TestKernelReport:
    def test_square_report(self):
        rep = kernel_report(build_square_kernel(), (100_000,), (1000,))
        text = rep.render()
        assert "square" in text
        assert "vectorized" in text
        assert rep.cpu_bottleneck in ("compute", "memory", "bandwidth", "latency")
        assert "bottleneck" in text and "occupancy" in text

    def test_ilp_kernel_is_latency_bound_scalar(self):
        from repro.simcpu.spec import CPUSpec
        import dataclasses

        rep = kernel_report(build_ilp_kernel(1), (24_576,), (256,))
        # with only one dependence chain, the latency bound dominates
        assert rep.cpu_bottleneck == "latency"
        assert "dependence" in rep.cpu_advice

    def test_verdict_tracks_costs(self):
        rep = kernel_report(build_ilp_kernel(4), (96 * 1024,), (256,))
        assert rep.faster_device == "GPU"  # massively parallel flops
        rep_small = kernel_report(build_square_kernel(), (1000,), (100,))
        assert rep_small.faster_device in ("CPU", "GPU")

    def test_scheduling_overhead_visible_for_tiny_workgroups(self):
        rep_small = kernel_report(build_square_kernel(), (100_000,), (1,))
        rep_big = kernel_report(build_square_kernel(), (100_000,), (1000,))
        assert rep_small.scheduling_overhead > rep_big.scheduling_overhead

    def test_blackscholes_reports_scalar_fallback(self):
        rep = kernel_report(
            build_blackscholes_kernel(), (128, 128), (16, 16),
            scalars={"riskfree": 0.02, "volatility": 0.3},
        )
        assert not rep.cpu_cost.vectorization.vectorized
        assert "erf" in rep.cpu_cost.vectorization.explain()

    def test_report_uses_buffer_sizes(self):
        small = kernel_report(
            build_square_kernel(), (4096,), (64,),
            buffer_bytes={"input": 16 << 10, "output": 16 << 10},
        )
        big = kernel_report(
            build_square_kernel(), (4096,), (64,),
            buffer_bytes={"input": 1 << 30, "output": 1 << 30},
        )
        assert big.cpu_cost.total_ns >= small.cpu_cost.total_ns
