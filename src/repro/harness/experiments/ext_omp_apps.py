"""EXT — OpenCL vs OpenMP across the portable Table II applications.

Section III-F describes the porting methodology ("We map multiple workitems
on OpenCL to a loop to port OpenCL kernels to their OpenMP counterparts")
but only reports the MBench micro-benchmarks (Figure 10).  This experiment
applies the same port to every Table II application whose kernel has an
OpenMP-loop equivalent — i.e. no workgroup constructs (barriers, ``__local``
memory) — and reports the ratio.

Expected, per the paper's Section II/III analysis:

* elementwise kernels (Square, Vectoraddition): near parity — both runtimes
  vectorize them and both hit the bandwidth wall;
* Blackscholes: the `erf`-based kernel is scalar under *both* compilers (no
  SVML erf), so the ratio reflects runtime overheads only;
* MatrixmulNaive: the OpenMP port parallelizes rows with the k-loop inside,
  a pattern the loop vectorizer accepts, so OpenMP is competitive.

This also documents which kernels are *not* portable: Matrixmul (tiles +
barriers), Reduction, Histogram (atomics + local), Prefixsum,
Binomialoption — exactly the kernels whose structure depends on the OpenCL
execution model, which is its own finding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...openmp import OpenMPRuntime
from ...suite import (
    BlackScholesBenchmark,
    MatrixMulNaiveBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
    all_table2_benchmarks,
)
from ..report import ExperimentResult, Series
from ..runner import bench_data, cpu_dut, measure_kernel

__all__ = ["run", "portable_benchmarks", "unportable_benchmarks"]


def portable_benchmarks(fast: bool = False) -> List[tuple]:
    """(benchmark, global_size) for every OpenMP-portable Table II app."""
    if fast:
        return [
            (SquareBenchmark(), (100_000,)),
            (VectorAddBenchmark(), (110_000,)),
            (BlackScholesBenchmark(), (128, 128)),
            (MatrixMulNaiveBenchmark(), (128, 128)),
        ]
    return [
        (SquareBenchmark(), (1_000_000,)),
        (VectorAddBenchmark(), (1_100_000,)),
        (BlackScholesBenchmark(), (1280, 1280)),
        (MatrixMulNaiveBenchmark(), (800, 1600)),
    ]


def unportable_benchmarks() -> List[str]:
    """Table II kernels with no OpenMP loop equivalent, and why."""
    out = []
    for b in all_table2_benchmarks():
        k = b.kernel()
        reasons = []
        if k.uses_local_memory:
            reasons.append("__local memory")
        if k.uses_barrier:
            reasons.append("barriers")
        if k.uses_atomics:
            reasons.append("atomics")
        if reasons:
            out.append(f"{b.name}: {', '.join(reasons)}")
    return out


def run(fast: bool = False) -> ExperimentResult:
    cpu = cpu_dut()
    omp = OpenMPRuntime(functional=False, env={"OMP_NUM_THREADS": "12"})
    ocl: Dict[str, float] = {}
    omp_pts: Dict[str, float] = {}
    notes = []
    for bench, gs in portable_benchmarks(fast):
        n = int(np.prod(gs))
        m = measure_kernel(cpu, bench, gs, bench.default_local_size)
        ocl[bench.name] = n / m.mean_ns  # items per ns

        host, scalars = bench_data(bench, gs)
        r = omp.parallel_for(bench.kernel(), n, buffers=host, scalars=scalars)
        omp_pts[bench.name] = n / r.time_ns
        notes.append(
            f"{bench.name}: OpenMP vectorizer -> {r.vectorization.explain()}"
        )
    notes.append("not portable to an OpenMP loop (the paper's own porting "
                 "methodology cannot express them):")
    notes += [f"  {line}" for line in unportable_benchmarks()]
    return ExperimentResult(
        experiment_id="ext_omp_apps",
        title="OpenCL vs OpenMP on the portable Table II applications (CPU)",
        series=[Series("OpenCL", ocl), Series("OpenMP", omp_pts)],
        value_name="throughput (items/ns)",
        notes=notes,
    )
