"""Per-kernel cycle accounting: where did the virtual time go?

A roofline-style decomposition of one launch's virtual time into its
constituents, in the idiom of engine slot-utilization analysis: compare
the cycle count against each resource's lower bound, report the binding
bound, and account every thread-slot cycle of the schedule as *busy*
(item execution vs per-workitem scheduling overhead), *dispatch* (the
workgroup context-switch cost the paper's Section II-A describes), or
*idle* (load-imbalance slots — threads waiting for the longest round to
finish).

The same decomposition steers the tuner: a kernel whose binding bound is
memory bandwidth *and* whose per-workitem overhead share is negligible
cannot profit from thread coarsening (coarsening only amortizes per-item
overhead), so the driver prunes the coarsening axis for it instead of
sweeping dead configurations.

``python -m repro tune --explain`` emits this as a schema-checked JSON
document (see docs/TUNING.md for the anatomy).
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

from ..simcpu.device import CPUDeviceModel
from ..suite.base import Benchmark

__all__ = [
    "EXPLAIN_SCHEMA",
    "cycle_accounting",
    "explain_doc",
    "render_comparison",
    "render_explain",
]

EXPLAIN_SCHEMA = 1

#: per-workitem overhead share below which coarsening cannot pay on a
#: bandwidth-/memory-limited kernel (the driver's pruning threshold)
_OVERHEAD_PRUNE_FRACTION = 0.05


def cycle_accounting(
    bench: Benchmark,
    global_size: Optional[Sequence[int]] = None,
    *,
    model: Optional[CPUDeviceModel] = None,
) -> dict:
    """Decompose one paper-default launch's virtual time (JSON-ready)."""
    from ..harness.runner import bench_data, kernel_ir

    if model is None:
        model = CPUDeviceModel()
    gs = tuple(
        int(g) for g in (global_size or bench.default_global_sizes[0])
    )
    kernel = kernel_ir(bench, 1)
    host, scalars = bench_data(bench, gs)
    cost = model.kernel_cost(
        kernel, gs, bench.default_local_size,
        scalars={k: float(v) for k, v in scalars.items()},
        buffer_bytes={k: int(v.nbytes) for k, v in host.items()},
    )
    spec = model.spec
    item = cost.item
    sched = cost.schedule

    # -- thread-slot accounting (busy / dispatch / idle) --------------------
    threads = max(1, sched.threads_used)
    slot_cycles = sched.makespan_cycles * threads
    busy = sched.busy_cycles_total
    dispatch = sched.dispatch_cycles_total
    idle = max(0.0, slot_cycles - busy - dispatch)

    # busy cycles split between real item execution and the per-workitem
    # scheduling overhead (what coarsening amortizes): the workgroup cost
    # is items * (item.cycles + overhead/vec_width), so the overhead share
    # of every busy cycle is overhead / (item + overhead)
    per_item_overhead = (
        spec.workitem_overhead_cycles
        / max(1.0, item.effective_vector_width)
    )
    overhead_fraction = (
        per_item_overhead / (item.cycles + per_item_overhead)
        if (item.cycles + per_item_overhead) > 0 else 0.0
    )
    busy_overhead = busy * overhead_fraction
    busy_item = busy - busy_overhead

    bottleneck = item.dominant()
    sweep_coalesce = not (
        bottleneck in ("memory", "bandwidth")
        and overhead_fraction < _OVERHEAD_PRUNE_FRACTION
    )
    if sweep_coalesce:
        reason = (
            f"per-workitem overhead is {overhead_fraction:.1%} of busy "
            f"cycles (bottleneck: {bottleneck}) — coarsening can pay"
        )
    else:
        reason = (
            f"{bottleneck}-bound with only {overhead_fraction:.1%} "
            f"per-workitem overhead — coarsening cannot pay, axis pruned"
        )

    return {
        "kernel": kernel.name,
        "global_size": list(gs),
        "local_size": list(cost.local_size),
        "workgroups": int(cost.analysis.ctx.workgroup_count),
        "bottleneck": bottleneck,
        "vectorized": bool(cost.vectorization.vectorized),
        "effective_vector_width": round(item.effective_vector_width, 2),
        "total_ns": round(cost.total_ns, 3),
        "makespan_ns": round(spec.cycles_to_ns(sched.makespan_cycles), 3),
        "launch_overhead_ns": round(spec.kernel_launch_overhead_ns, 3),
        "per_item_bounds_cycles": {
            "compute": round(item.compute_bound, 4),
            "memory": round(item.memory_bound, 4),
            "bandwidth": round(item.bandwidth_bound, 4),
            "latency": round(item.latency_bound, 4),
            "binding": round(item.cycles, 4),
        },
        "slots": {
            "threads": threads,
            "rounds": int(sched.rounds),
            "slot_cycles": round(slot_cycles, 1),
            "busy_item_cycles": round(busy_item, 1),
            "busy_overhead_cycles": round(busy_overhead, 1),
            "dispatch_cycles": round(dispatch, 1),
            "idle_cycles": round(idle, 1),
            "utilization": round(busy / slot_cycles, 4) if slot_cycles else 0.0,
            "scheduling_overhead_fraction": round(
                sched.scheduling_overhead_fraction, 4
            ),
            "workitem_overhead_fraction": round(overhead_fraction, 4),
        },
        "pruning": {"sweep_coalesce": sweep_coalesce, "reason": reason},
    }


def explain_doc(
    benches: Dict[str, Benchmark],
    *,
    global_size: Optional[Sequence[int]] = None,
) -> dict:
    """The ``repro tune --explain`` document over several benchmarks."""
    return {
        "schema": EXPLAIN_SCHEMA,
        "kernels": {
            name: cycle_accounting(benches[name], global_size)
            for name in sorted(benches)
        },
    }


def render_explain(doc: dict) -> str:
    """Human-readable rendering of an explain document."""
    out = io.StringIO()
    w = out.write
    for name, k in doc["kernels"].items():
        s = k["slots"]
        gs = "x".join(str(x) for x in k["global_size"])
        ls = "x".join(str(x) for x in k["local_size"])
        w(f"{name} ({k['kernel']}): global {gs}, local {ls}, "
          f"{k['workgroups']} workgroup(s)\n")
        w(f"  virtual time {k['total_ns'] / 1e6:.3f} ms "
          f"(makespan {k['makespan_ns'] / 1e6:.3f} ms + launch overhead "
          f"{k['launch_overhead_ns'] / 1e3:.1f} us)\n")
        b = k["per_item_bounds_cycles"]
        w(f"  per-item bounds (cycles): compute {b['compute']}, memory "
          f"{b['memory']}, bandwidth {b['bandwidth']}, latency "
          f"{b['latency']} -> binding: {k['bottleneck']} "
          f"({b['binding']})\n")
        total = s["slot_cycles"] or 1.0
        w(f"  thread slots ({s['threads']} thread(s), {s['rounds']} "
          f"round(s)): item {s['busy_item_cycles'] / total:.1%}, "
          f"workitem overhead {s['busy_overhead_cycles'] / total:.1%}, "
          f"dispatch {s['dispatch_cycles'] / total:.1%}, idle "
          f"{s['idle_cycles'] / total:.1%} "
          f"(utilization {s['utilization']:.1%})\n")
        w(f"  search: {k['pruning']['reason']}\n\n")
    return out.getvalue()


def render_comparison(doc: dict) -> str:
    """Tuned-vs-paper-default table for one sweep document."""
    out = io.StringIO()
    w = out.write
    w(f"{'benchmark':<16} {'default':>12} {'tuned':>12} {'speedup':>8}"
      f"  configuration\n")
    for name in sorted(doc.get("configs", {})):
        cfg = doc["configs"][name]
        d_ns = cfg["default"]["result"]["value"]
        b_ns = cfg["best"]["result"]["value"]
        units = cfg["default"]["result"].get("units", "ns")
        if units == "ns":
            d_txt, b_txt = f"{d_ns / 1e6:.3f}ms", f"{b_ns / 1e6:.3f}ms"
            speedup = d_ns / b_ns if b_ns > 0 else 0.0
        else:
            d_txt, b_txt = f"{d_ns:.4f}", f"{b_ns:.4f}"
            speedup = b_ns / d_ns if d_ns > 0 else 0.0
        from .space import KnobPoint

        point = KnobPoint.from_payload(cfg["best"]["point"])
        w(f"{name:<16} {d_txt:>12} {b_txt:>12} {speedup:>7.2f}x"
          f"  {point.describe()}\n")
    store = doc.get("store")
    if store:
        w(f"\nsweep store: {store['hits']} hit(s), {store['misses']} "
          f"executed, {store['stores']} stored\n")
    return out.getvalue()
