"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (fast
configurations, so a full ``pytest benchmarks/ --benchmark-only`` stays in
the minutes range) and asserts the paper's qualitative claim on the result,
so a model regression shows up as a failure — not just a timing blip.
"""

import pytest


@pytest.fixture(autouse=True)
def _benchmark_rounds(benchmark):
    """Keep pytest-benchmark from spinning hundreds of rounds on the slower
    experiment regenerations."""
    if hasattr(benchmark, "_min_rounds"):
        benchmark._min_rounds = 1
    yield
