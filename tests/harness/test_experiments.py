"""Integration tests: every experiment reproduces the paper's qualitative
claims (fast configurations).

Each test pins down the *shape* the paper reports — who wins, in which
direction, roughly by how much — which is the reproduction contract.
"""

import pytest

from repro.harness.registry import EXPERIMENTS, run_all, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run everything once; individual tests assert on the shared results."""
    return {name: fn(True) for name, fn in EXPERIMENTS.items()}


class TestRegistry:
    def test_all_experiments_present(self, results):
        expected = {
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "flags",
            "ext_affinity", "ext_omp_apps", "ext_portability",
            "conclusions",
        }
        assert set(results) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_every_result_renders(self, results):
        for r in results.values():
            text = r.render()
            assert r.experiment_id in text
            assert r.to_csv()


class TestTables:
    def test_table1_reports_both_devices(self, results):
        notes = "\n".join(results["table1"].notes)
        assert "E5645" in notes and "GTX 580" in notes
        assert "230.4" in notes and "1.58" in notes

    def test_table2_lists_all_nine_apps(self, results):
        assert len(results["table2"].notes) == 9

    def test_table3_lists_all_five_kernels(self, results):
        assert len(results["table3"].notes) == 5


class TestFig1Coalescing:
    def test_cpu_gains_from_coalescing(self, results):
        r = results["fig1"]
        for x in r.x_labels:
            best = max(
                r.get(f"{lbl}(CPU)").points[x] for lbl in ("10", "100", "1000")
            )
            assert best > 1.1, f"no CPU gain for {x}"

    def test_gpu_collapses_at_heavy_coalescing(self, results):
        r = results["fig1"]
        for x in r.x_labels:
            assert r.get("1000(GPU)").points[x] < 0.3

    def test_gpu_monotonically_degrades(self, results):
        r = results["fig1"]
        for x in r.x_labels:
            assert r.get("1000(GPU)").points[x] < r.get("10(GPU)").points[x]


class TestFig2Parboil:
    def test_compute_kernels_gain(self, results):
        r = results["fig2"]
        for name in ("CP: cenergy", "MRI-Q: computeQ"):
            assert r.get("2X").points[name] > 1.05

    def test_rhophi_stays_flat(self, results):
        r = results["fig2"]
        for lbl in ("2X", "4X"):
            assert r.get(lbl).points["MRI-FHD: RhoPhi"] == pytest.approx(
                1.0, abs=0.15
            )


class TestFig3WorkgroupSize:
    def test_group1_apps_improve_with_workgroup_size(self, results):
        r = results["fig3"]
        for app in ("Square", "VectorAddition", "MatrixmulNaive"):
            c1 = r.get("case_1(CPU)").points[app]
            c4 = r.get("case_4(CPU)").points[app]
            assert c4 > 3 * c1, app

    def test_null_below_explicit_peak(self, results):
        """Figure 3: 'programmers should explicitly set the workgroup size'"""
        r = results["fig3"]
        for app in ("Square", "VectorAddition"):
            assert r.get("case_4(CPU)").points[app] > 1.02

    def test_gpu_small_workgroups_catastrophic(self, results):
        r = results["fig3"]
        for app in ("Square", "Matrixmul", "Blackscholes"):
            assert r.get("case_1(GPU)").points[app] < 0.1

    def test_cpu_saturates(self, results):
        r = results["fig3"]
        c3 = r.get("case_3(CPU)").points["Square"]
        c4 = r.get("case_4(CPU)").points["Square"]
        assert c4 / c3 < 1.5  # diminishing returns


class TestFig4Blackscholes:
    def test_cpu_flat(self, results):
        r = results["fig4"]
        for lbl in ("case_1", "case_2", "case_3", "case_4"):
            for x, v in r.get(f"{lbl}(CPU)").points.items():
                assert 0.85 < v < 1.2, (lbl, x, v)

    def test_gpu_sensitive(self, results):
        r = results["fig4"]
        for x, v in r.get("case_1(GPU)").points.items():
            assert v < 0.2


class TestFig5ParboilWgSize:
    def test_no_series_collapses(self, results):
        r = results["fig5"]
        for s in r.series:
            assert min(s.points.values()) > 0.5

    def test_gains_or_saturation(self, results):
        """Performance rises with workgroup size (or is already saturated)."""
        r = results["fig5"]
        for s in r.series:
            assert s.points["4"] >= s.points["1"] * 0.9


class TestFig6ILP:
    def test_cpu_scales_with_ilp(self, results):
        r = results["fig6"]
        cpu = [r.get("CPU").points[str(k)] for k in (1, 2, 3, 4, 5)]
        assert cpu == sorted(cpu)
        assert cpu[3] / cpu[0] > 2.5  # near-linear to ILP 4

    def test_gpu_flat(self, results):
        r = results["fig6"]
        gpu = [r.get("GPU").points[str(k)] for k in (1, 2, 3, 4, 5)]
        assert max(gpu) / min(gpu) < 1.05

    def test_gpu_much_faster_absolute(self, results):
        r = results["fig6"]
        assert r.get("GPU").points["1"] > 5 * r.get("CPU").points["5"]


class TestFig7TransferApi:
    def test_mapping_superior_everywhere(self, results):
        """'Mapping APIs perform superior to explicit data transfer on all
        possible combinations.'"""
        r = results["fig7"]
        for s in r.series:
            for x, v in s.points.items():
                assert v > 1.0, (s.label, x)

    def test_ratio_identical_across_flag_combos(self, results):
        r = results["fig7"]
        for x in r.x_labels:
            vals = [s.points[x] for s in r.series]
            assert max(vals) - min(vals) < 1e-9


class TestFig8ParboilTransfer:
    def test_mapping_faster_both_directions(self, results):
        r = results["fig8"]
        for app in r.x_labels:
            assert (
                r.get("Mapping (host to device)").points[app]
                < r.get("Copying (host to device)").points[app]
            )
            assert (
                r.get("Mapping (device to host)").points[app]
                < r.get("Copying (device to host)").points[app]
            )


class TestFig9Affinity:
    def test_misaligned_slower_by_about_15_percent(self, results):
        r = results["fig9"]
        al = r.get("aligned").points["total (ms)"]
        mis = r.get("misaligned").points["total (ms)"]
        assert 1.05 < mis / al < 1.45

    def test_first_kernel_unaffected(self, results):
        r = results["fig9"]
        assert r.get("aligned").points["computation 1 (ms)"] == pytest.approx(
            r.get("misaligned").points["computation 1 (ms)"]
        )


class TestFig10Vectorization:
    def test_opencl_outperforms_openmp_on_every_mbench(self, results):
        r = results["fig10"]
        ocl, omp = r.get("OpenCL"), r.get("OpenMP")
        for x in r.x_labels:
            assert ocl.points[x] > omp.points[x], x

    def test_openmp_vectorizer_bails_everywhere(self, results):
        notes = "\n".join(results["fig10"].notes)
        assert notes.count("not vectorized") == 8


class TestFig11Example:
    def test_opencl_vectorizes_openmp_does_not(self, results):
        r = results["fig11"]
        assert r.get("OpenCL").points["vectorized"] == 1.0
        assert r.get("OpenMP").points["vectorized"] == 0.0

    def test_speedup_positive(self, results):
        r = results["fig11"]
        assert r.get("OpenCL").points["Gflop/s"] > r.get("OpenMP").points["Gflop/s"]


class TestExtensionExperiments:
    def test_affinity_extension_pays_off(self, results):
        r = results["ext_affinity"]
        total = {s.label: s.points["total (ms)"] for s in r.series}
        assert total["aligned"] < total["stock"]
        assert total["aligned"] < total["misaligned"]

    def test_omp_apps_covers_portable_kernels(self, results):
        r = results["ext_omp_apps"]
        assert set(r.x_labels) == {
            "Square", "Vectoraddition", "Blackscholes", "MatrixmulNaive"
        }
        # every unportable Table II kernel is accounted for in the notes
        notes = "\n".join(r.notes)
        for name in ("Matrixmul:", "Reduction:", "Histogram:",
                     "Prefixsum:", "Binomialoption:"):
            assert name in notes

    def test_portability_projection_preserves_findings(self, results):
        r = results["ext_portability"]
        for s in r.series:
            assert s.points["coalescing gain (fig1)"] > 1.5
            assert 2.5 < s.points["ILP-4 / ILP-1 (fig6)"] < 5.0
            assert s.points["copy/map time ratio (fig7)"] > 10
        # the wider part is faster in absolute terms
        west = r.get("Westmere (paper)").points["ILP-4 Gflop/s"]
        avx = r.get("AVX projection").points["ILP-4 Gflop/s"]
        assert avx > 1.5 * west

    def test_opencl_wins_where_loop_vectorizer_fails(self, results):
        """Blackscholes (scalar under both, lower runtime overhead wins)
        and MatrixmulNaive behave differently from pure streaming apps."""
        r = results["ext_omp_apps"]
        ocl, omp = r.get("OpenCL"), r.get("OpenMP")
        assert ocl.points["Blackscholes"] > omp.points["Blackscholes"]
        # pure streaming: the lighter fork-join runtime is at least on par
        assert omp.points["Vectoraddition"] >= ocl.points["Vectoraddition"]


class TestConclusions:
    def test_all_five_conclusions_pass(self, results):
        r = results["conclusions"]
        verdicts = r.get("verified (1=PASS)").points
        assert len(verdicts) == 5
        assert all(v == 1.0 for v in verdicts.values()), verdicts


class TestFlagsNullResult:
    def test_flags_change_nothing(self, results):
        r = results["flags"]
        for x in r.x_labels:
            vals = [s.points[x] for s in r.series]
            assert (max(vals) - min(vals)) / max(vals) < 0.01
