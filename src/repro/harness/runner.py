"""Shared machinery for the experiment modules: device setup, buffer
creation, and one-call kernel/transfer measurement through the full minicl
stack (so every experiment exercises the same code path a user would)."""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
import threading
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import diskcache
from .. import minicl as cl
from ..kernelir.ast import Kernel
from ..plancache import LaunchPlanCache
from ..suite.base import Benchmark, scale_global_size
from .timing import Measurement, repeat_to_target

__all__ = [
    "DeviceUnderTest",
    "DiagnosticTally",
    "bench_data",
    "collect_diagnostics",
    "cpu_dut",
    "gpu_dut",
    "kernel_ir",
    "measure_kernel",
    "measure_app_throughput",
    "make_buffers",
]

#: default RNG seed for benchmark input data (shared by every measurement)
_DATA_SEED = 12345

#: built kernel IR per (benchmark identity, coalesce factor) — the suite
#: factories rebuild the whole AST on every ``bench.kernel()`` call
_KERNEL_IR_CACHE = LaunchPlanCache("harness.kernel_ir", maxsize=512)

#: deterministic benchmark input data per (benchmark identity, global size);
#: weight-bounded because the Table II arrays reach ~130 MB per entry
_DATA_CACHE = LaunchPlanCache(
    "harness.make_data",
    maxsize=64,
    max_weight=2 << 30,
    weigher=lambda v: sum(a.nbytes for a in v[0].values()),
)

#: static-verifier reports per (benchmark identity, launch shape) — shared
#: across experiments, so the 19-experiment suite verifies each distinct
#: launch once instead of once per experiment
_VERIFY_REPORT_CACHE = LaunchPlanCache("harness.verify", maxsize=1024)


def _bench_key(bench: Benchmark) -> Tuple:
    """Cache identity of a benchmark instance.

    Module + class + name, plus the benchmark's own :meth:`cache_token`
    for constructor parameters (tile sizes etc.) the name doesn't encode.
    """
    t = type(bench)
    return (t.__module__, t.__qualname__, bench.name, bench.cache_token())


def kernel_ir(bench: Benchmark, coalesce: int = 1) -> Kernel:
    """``bench.kernel(coalesce)``, built once and reused across measurements."""
    key = (_bench_key(bench), int(coalesce))
    k = _KERNEL_IR_CACHE.get(key)
    if k is None:
        k = bench.kernel(coalesce)
        _KERNEL_IR_CACHE.put(key, k)
    return k


def bench_data(bench: Benchmark, global_size: Sequence[int]):
    """Deterministic ``bench.make_data`` at the shared seed, cached.

    The returned host arrays are shared and marked read-only; buffer
    creation snapshots them (COPY_HOST_PTR), so kernel writes never touch
    the cached copy.

    Under the zero-copy data plane (``REPRO_SHM``, default on) the arrays
    additionally live in a content-addressed ``multiprocessing``
    shared-memory segment: the first *pool worker* to need a dataset
    generates and publishes it, every sibling process maps the same
    physical pages read-only instead of re-generating or unpickling its
    own copy (single-process runs skip the publish memcpy — there is
    nobody to share with).  The segment key
    folds in a digest of the benchmark's defining module, so editing a
    generator invalidates stale segments the same way ``code_version()``
    rolls the disk cache.
    """
    from .. import shm

    gs = tuple(int(g) for g in global_size)
    key = (_bench_key(bench), gs)
    cached = _DATA_CACHE.get(key)
    if cached is not None:
        return cached
    use_shm = shm.shm_enabled()
    shm_key = (key, shm.module_digest(type(bench).__module__))
    if use_shm:
        cached = shm.attach_arrays(shm_key)
        if cached is not None:
            _DATA_CACHE.put(key, cached)
            return cached
    host, scalars = bench.make_data(gs, np.random.default_rng(_DATA_SEED))
    for a in host.values():
        a.setflags(write=False)
    cached = (host, scalars)
    # publishing is a memcpy into the segment — only worth it when sibling
    # pool workers exist to attach; single-process runs skip it
    if use_shm and shm.is_worker_process():
        shm.publish_arrays(shm_key, host, scalars)
    _DATA_CACHE.put(key, cached)
    return cached


def _load_verify_report(key):
    """Disk-cached verify report for a resolved launch key, or ``None``.

    A warm benchmark run loads every report from ``repro.diskcache``
    instead of re-running the dataflow fixpoint + race rules — the single
    largest host-time cost of a fully cached suite run.  Any payload the
    deserializer rejects is treated as a miss (the cache's corruption
    contract).
    """
    payload = diskcache.load_verify(key)
    if payload is None:
        return None
    try:
        from ..kernelir.verify import VerifyReport

        return VerifyReport.from_payload(payload)
    except Exception:
        return None


class DiagnosticTally:
    """Aggregated static-verifier findings for one experiment's launches.

    The harness verifies each distinct (benchmark, coalesce, launch shape)
    once; repeated sweep points reuse the first result.
    """

    def __init__(self):
        self.launches = 0
        self.counts = {"error": 0, "warning": 0, "note": 0}
        #: raw sweep-point key -> resolved report-cache key.  The resolved
        #: key is what the report cache is addressed by; memoizing the
        #: mapping makes repeat sweep points one dict lookup + one cache
        #: hit instead of a kernel build + launch resolution.
        self._keys: dict = {}

    def record(self, bench: Benchmark, global_size, coalesce, local_size):
        raw = (
            _bench_key(bench),
            int(coalesce),
            tuple(global_size),
            tuple(local_size) if local_size is not None else None,
        )
        first = raw not in self._keys
        if first:
            # A verify report is a pure function of the *resolved* launch —
            # kernel IR, scaled global size, resolved local size, scalar
            # values and buffer sizes — not of how the sweep point spelled
            # it.  Keying on the resolved identity lets sweep points that
            # coincide after coalesce scaling / the NULL-local-size policy
            # share one entry (the raw key used to keep them apart and the
            # hit rate low).
            data = bench_data(bench, global_size)
            kernel, launch_gs, resolved_ls = bench.resolved_launch(
                global_size, coalesce=coalesce, local_size=local_size,
                kernel=kernel_ir(bench, coalesce),
            )
            scalars = {**data[1], **bench.scalars_for(coalesce)}
            self._keys[raw] = (
                kernel.fingerprint(),
                launch_gs,
                resolved_ls,
                tuple(sorted((k, float(v)) for k, v in scalars.items())),
                tuple(sorted(
                    (k, int(v.shape[0])) for k, v in data[0].items()
                )),
            )
        key = self._keys[raw]
        # consult the report cache on *every* record: the harness replays
        # the same launch many times per experiment, and each replay is a
        # legitimate logical access (this is where the cache earns its
        # hit rate — the old early-return hid all repeats from it)
        report = _VERIFY_REPORT_CACHE.get(key)
        if report is None:
            report = _load_verify_report(key)
            if report is None:
                report = bench.verify(
                    global_size, coalesce=coalesce, local_size=local_size,
                    data=bench_data(bench, global_size),
                    kernel=kernel_ir(bench, coalesce),
                )
                diskcache.store_verify(key, report.to_payload())
            _VERIFY_REPORT_CACHE.put(key, report)
        if first:
            # tally each sweep point once, so experiment notes (and the
            # CSV-adjacent "N verified launch(es)" line) stay stable
            self.launches += 1
            for d in report.diagnostics:
                self.counts[d.severity] += 1

    def summary(self) -> str:
        c = self.counts
        return (
            f"verifier: {c['error']} error(s), {c['warning']} warning(s), "
            f"{c['note']} note(s) across {self.launches} verified launch(es)"
        )


#: active collector per thread (installed by :func:`collect_diagnostics`).
#: Thread-local rather than a module global so the experiment service can
#: run several tenants' experiments concurrently without cross-tallying —
#: each worker thread sees exactly the tally of the experiment it runs.
_tally_tls = threading.local()


@contextlib.contextmanager
def collect_diagnostics():
    """Verify every kernel launch measured inside the block and tally counts."""
    prev = getattr(_tally_tls, "tally", None)
    _tally_tls.tally = tally = DiagnosticTally()
    try:
        yield tally
    finally:
        _tally_tls.tally = prev


def _note_launch(bench: Benchmark, global_size, coalesce, local_size) -> None:
    tally = getattr(_tally_tls, "tally", None)
    if tally is not None:
        tally.record(bench, global_size, coalesce, local_size)


@dataclasses.dataclass
class DeviceUnderTest:
    """A context+queue pair on one simulated device."""

    context: cl.Context
    queue: cl.CommandQueue
    #: built programs per kernel fingerprint (``clRetainProgram`` semantics:
    #: one build per context instead of one per measurement)
    programs: LaunchPlanCache = dataclasses.field(
        default_factory=lambda: LaunchPlanCache("harness.program", maxsize=256),
        repr=False,
    )

    @property
    def device(self) -> cl.Device:
        return self.context.device

    @property
    def is_gpu(self) -> bool:
        return self.device.is_gpu

    def fresh_queue(self, functional: bool = False) -> cl.CommandQueue:
        return self.context.create_command_queue(functional=functional)

    def build_program(self, kernel: Kernel) -> cl.Program:
        """Create+build a program for ``kernel``, cached per fingerprint.

        Build-time JIT compilation is skipped for timing-only DUTs (the
        default): their enqueues never execute functionally, and the rare
        functional queue (``fresh_queue(functional=True)``) still gets the
        compiled engine via the lazy per-launch path.
        """
        key = kernel.fingerprint()
        prog = self.programs.get(key)
        if prog is None:
            prog = self.context.create_program(kernel).build(
                jit=self.queue.functional
            )
            self.programs.put(key, prog)
        return prog


def cpu_dut(functional: bool = False) -> DeviceUnderTest:
    ctx = cl.Context(cl.cpu_platform().devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=functional))


def gpu_dut(functional: bool = False) -> DeviceUnderTest:
    ctx = cl.Context(cl.gpu_platform().devices)
    return DeviceUnderTest(ctx, ctx.create_command_queue(functional=functional))


def make_buffers(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    *,
    flags_map: Optional[Dict[str, cl.mem_flags]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Dict[str, cl.Buffer], Dict[str, object], Dict[str, np.ndarray]]:
    """Create minicl buffers (+host arrays) for one benchmark launch.

    ``flags_map`` overrides allocation flags per buffer; the default honours
    the kernel's declared access (READ_ONLY inputs, WRITE_ONLY outputs),
    which is the paper's "ReadOnly or WriteOnly" configuration.
    """
    if rng is None:
        host, scalars = bench_data(bench, global_size)
    else:
        host, scalars = bench.make_data(global_size, rng)
    kernel = kernel_ir(bench)
    flags_map = flags_map or {}
    buffers: Dict[str, cl.Buffer] = {}
    for p in kernel.buffer_params:
        arr = host[p.name]
        if p.name in flags_map:
            flags = flags_map[p.name]
        elif p.access == "r":
            flags = cl.mem_flags.READ_ONLY
        elif p.access == "w":
            flags = cl.mem_flags.WRITE_ONLY
        else:
            flags = cl.mem_flags.READ_WRITE
        buffers[p.name] = dut.context.create_buffer(
            flags | cl.mem_flags.COPY_HOST_PTR, hostbuf=arr
        )
    return buffers, scalars, host


# -- tuned-configuration overlay (``repro bench --tuned``) ------------------

#: parsed ``configs`` of the file REPRO_TUNED points at (keyed by path)
_TUNED_CONFIGS: Optional[Dict[str, dict]] = None
_TUNED_PATH: Optional[str] = None
_TUNED_SUSPENDED = False


@contextlib.contextmanager
def tuned_overlay_disabled():
    """Suspend the REPRO_TUNED overlay (the tuner measures explicit points;
    its paper-default measurements must never be silently overlaid)."""
    global _TUNED_SUSPENDED
    prev = _TUNED_SUSPENDED
    _TUNED_SUSPENDED = True
    try:
        yield
    finally:
        _TUNED_SUSPENDED = prev


def _tuned_configs() -> Dict[str, dict]:
    global _TUNED_CONFIGS, _TUNED_PATH
    path = os.environ.get("REPRO_TUNED")
    if not path:
        return {}
    if _TUNED_CONFIGS is None or _TUNED_PATH != path:
        _TUNED_PATH = path
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError):
            doc = {}
        _TUNED_CONFIGS = (
            doc.get("configs", {}) if doc.get("schema") == 1 else {}
        )
    return _TUNED_CONFIGS


def _tuned_overlay(
    bench: Benchmark,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]],
    coalesce: int,
) -> Tuple[Optional[Sequence[int]], int]:
    """Swap a paper-default launch for the tuned configuration, if opted in.

    Active only via ``REPRO_TUNED=<tuned_configs.json>`` (the ``--tuned``
    flag), and only for launches *at* the paper default (explicitly tuned
    call sites keep their explicit knobs) — so default runs stay
    byte-identical whenever the env var is absent.
    """
    if _TUNED_SUSPENDED:
        return local_size, coalesce
    configs = _tuned_configs()
    cfg = configs.get(bench.name)
    if cfg is None:
        return local_size, coalesce
    default_ls = bench.default_local_size
    at_default = coalesce == 1 and (
        local_size is None
        or (default_ls is not None
            and tuple(local_size) == tuple(default_ls))
    )
    if not at_default:
        return local_size, coalesce
    point = cfg.get("best", {}).get("point", {})
    tuned_ls = point.get("local_size")
    tuned_k = int(point.get("coalesce", 1))
    gs = tuple(int(g) for g in global_size)
    if tuned_k > 1 and gs[0] % tuned_k != 0:
        tuned_k = 1  # tuned at a different shape; keep the launch legal
    if tuned_ls is not None:
        # legalize against the coalesce-scaled launch exactly as the tuner
        # did when it measured this point
        from ..suite.base import _largest_divisor_at_most

        launch_gs = scale_global_size(gs, tuned_k)
        tuned_ls = tuple(
            _largest_divisor_at_most(g, min(int(l), g))
            for l, g in zip(tuned_ls, launch_gs)
        )
    return tuned_ls, tuned_k


def measure_kernel(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    *,
    coalesce: int = 1,
    max_invocations: int = 3,
    buffers: Optional[Dict[str, cl.Buffer]] = None,
    scalars: Optional[Dict[str, object]] = None,
) -> Measurement:
    """Average kernel time for one configuration, via the full minicl path."""
    local_size, coalesce = _tuned_overlay(
        bench, global_size, local_size, coalesce
    )
    if buffers is None or scalars is None:
        buffers, scalars, _ = make_buffers(dut, bench, global_size)
    scalars = {**scalars, **bench.scalars_for(coalesce)}
    launch_gs = scale_global_size(global_size, coalesce)
    _note_launch(bench, global_size, coalesce, local_size)

    # build the kernel IR and program once; repeat_to_target reuses both
    kir = kernel_ir(bench, coalesce)
    program = dut.build_program(kir)
    k = program.create_kernel(kir.name)
    args = []
    for p in k.kernel.params:
        args.append(buffers[p.name] if p.name in buffers else scalars[p.name])
    k.set_args(*args)
    queue = dut.fresh_queue(functional=False)
    return repeat_to_target(
        lambda: queue.enqueue_nd_range_kernel(k, launch_gs, local_size),
        max_invocations=max_invocations,
    )


def measure_app_throughput(
    dut: DeviceUnderTest,
    bench: Benchmark,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    *,
    transfer_api: str = "copy",
    flags_map: Optional[Dict[str, cl.mem_flags]] = None,
) -> float:
    """The paper's Equation (1): work / (kernel time + transfer time).

    Inputs move host->device before the kernel and outputs device->host
    after it, with either the copy APIs (``clEnqueueWrite/ReadBuffer``) or
    the mapping APIs (``clEnqueueMapBuffer``/unmap).
    """
    buffers, scalars, host = make_buffers(dut, bench, global_size,
                                          flags_map=flags_map)
    kir = kernel_ir(bench)
    _note_launch(bench, global_size, 1, local_size)
    queue = dut.fresh_queue(functional=False)

    t0 = queue.now_ns
    # host -> device for kernel inputs
    for p in kir.buffer_params:
        if "r" in p.access:
            if transfer_api == "copy":
                queue.enqueue_write_buffer(buffers[p.name], host[p.name])
            else:
                view, _ = queue.enqueue_map_buffer(
                    buffers[p.name], cl.map_flags.WRITE
                )
                queue.enqueue_unmap(buffers[p.name], view)
    # the kernel itself
    program = dut.build_program(kir)
    k = program.create_kernel(kir.name)
    args = [
        buffers[p.name] if p.name in buffers else scalars[p.name]
        for p in kir.params
    ]
    k.set_args(*args)
    queue.enqueue_nd_range_kernel(k, tuple(global_size), local_size)
    # device -> host for kernel outputs
    for p in kir.buffer_params:
        if "w" in p.access:
            if transfer_api == "copy":
                dst = np.empty_like(host[p.name])
                queue.enqueue_read_buffer(buffers[p.name], dst)
            else:
                view, _ = queue.enqueue_map_buffer(
                    buffers[p.name], cl.map_flags.READ
                )
                queue.enqueue_unmap(buffers[p.name], view)
    elapsed = queue.now_ns - t0
    work = float(np.prod(tuple(global_size)))
    return work / elapsed if elapsed > 0 else 0.0
