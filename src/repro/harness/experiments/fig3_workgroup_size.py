"""Figure 3 + Table V — workgroup-size sweep on CPUs and GPUs.

Table V's configurations:

=============== ========= ====== ====== ====== ======
benchmark        base      case1  case2  case3  case4
=============== ========= ====== ====== ====== ======
Square           NULL      1      10     100    1000
VectorAddition   NULL      1      10     100    1000
Matrixmul        16x16     1x1    2x2    4x4    8x8
Blackscholes     16x16     1x1    1x2    2x2    2x4
MatrixmulNaive   16x16     1x1    2x2    4x4    8x8
=============== ========= ====== ====== ====== ======

Expected behaviour groups (paper Section III-B2): Square/VectorAdd/Naive
improve with workgroup size on the CPU (fewer workgroups = less scheduling
overhead) and saturate; Matrixmul's optimum differs CPU (8x8) vs GPU
(16x16) through the local-memory tile; Blackscholes is flat on the CPU but
sensitive on the GPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...suite import (
    BlackScholesBenchmark,
    MatrixMulBenchmark,
    MatrixMulNaiveBenchmark,
    SquareBenchmark,
    VectorAddBenchmark,
)
from ..report import ExperimentResult, Series
from ..runner import DeviceUnderTest, cpu_dut, gpu_dut, make_buffers, measure_kernel

__all__ = ["run", "TABLE5"]

# benchmark label -> (base local, [case locals])
TABLE5: Dict[str, Tuple[Optional[tuple], List[tuple]]] = {
    "Square": (None, [(1,), (10,), (100,), (1000,)]),
    "VectorAddition": (None, [(1,), (10,), (100,), (1000,)]),
    "Matrixmul": ((16, 16), [(1, 1), (2, 2), (4, 4), (8, 8)]),
    "Blackscholes": ((16, 16), [(1, 1), (1, 2), (2, 2), (2, 4)]),
    "MatrixmulNaive": ((16, 16), [(1, 1), (2, 2), (4, 4), (8, 8)]),
}


def _bench_for(label: str, local) -> object:
    if label == "Square":
        return SquareBenchmark()
    if label == "VectorAddition":
        return VectorAddBenchmark()
    if label == "Matrixmul":
        # the tile size follows the launch's workgroup shape
        return MatrixMulBenchmark(block=local[0] if local else 16)
    if label == "Blackscholes":
        return BlackScholesBenchmark()
    if label == "MatrixmulNaive":
        return MatrixMulNaiveBenchmark()
    raise KeyError(label)


def _gsize_for(label: str, fast: bool) -> tuple:
    if label in ("Square", "VectorAddition"):
        return (100_000,) if fast else (1_000_000,)
    if label in ("Matrixmul", "MatrixmulNaive"):
        return (128, 256) if fast else (800, 1600)
    return (128, 128) if fast else (1280, 1280)  # Blackscholes


def _matmul_block_safe(label: str, local) -> bool:
    # Matrixmul's blocked kernel needs a square tile
    return not (label == "Matrixmul" and local is not None and local[0] != local[1])


def run(fast: bool = False) -> ExperimentResult:
    duts = ((cpu_dut(), "CPU"), (gpu_dut(), "GPU"))
    labels = ["base"] + [f"case_{i}" for i in range(1, 5)]
    series: Dict[str, Dict[str, float]] = {
        f"{lbl}({tag})": {} for lbl in labels for _, tag in duts
    }

    for app, (base_local, cases) in TABLE5.items():
        gs = _gsize_for(app, fast)
        configs = [("base", base_local)] + [
            (f"case_{i}", ls) for i, ls in enumerate(cases, start=1)
        ]
        for dut, tag in duts:
            base_thr = None
            for lbl, ls in configs:
                if not _matmul_block_safe(app, ls):
                    continue
                bench = _bench_for(app, ls)
                buffers, scalars, _ = make_buffers(dut, bench, gs)
                m = measure_kernel(
                    dut, bench, gs, ls, buffers=buffers, scalars=scalars
                )
                thr = m.throughput(float(gs[0]) * (gs[1] if len(gs) > 1 else 1))
                if lbl == "base":
                    base_thr = thr
                series[f"{lbl}({tag})"][app] = thr / base_thr
    return ExperimentResult(
        experiment_id="fig3",
        title="Applications with different workgroup size on CPUs and GPUs",
        series=[Series(k, v) for k, v in series.items()],
        notes=[
            "base local sizes: Square/VectorAddition NULL; matrix apps 16x16 "
            "(Table V)"
        ],
    )
