"""Unit tests for the lock-step SIMT interpreter."""

import numpy as np
import pytest

from repro.kernelir import ast as ir
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.interp import Interpreter, KernelExecutionError
from repro.kernelir.types import F32, I32, I64


def run(kernel, gsize, lsize=None, count_ops=False, **data):
    bufs = {k: v for k, v in data.items() if isinstance(v, np.ndarray)}
    scalars = {k: v for k, v in data.items() if not isinstance(v, np.ndarray)}
    res = Interpreter().launch(
        kernel, gsize, lsize, buffers=bufs, scalars=scalars, count_ops=count_ops
    )
    return bufs, res


def _copy_kernel():
    kb = KernelBuilder("copy")
    a = kb.buffer("a", F32, access="r")
    o = kb.buffer("o", F32, access="w")
    g = kb.global_id(0)
    o[g] = a[g]
    return kb.finish()


class TestLaunchValidation:
    def test_global_local_divisibility(self):
        with pytest.raises(KernelExecutionError, match="INVALID_WORK_GROUP_SIZE"):
            run(_copy_kernel(), 10, 3, a=np.zeros(10, np.float32), o=np.zeros(10, np.float32))

    def test_missing_buffer(self):
        with pytest.raises(KernelExecutionError, match="missing buffer"):
            run(_copy_kernel(), 4, a=np.zeros(4, np.float32))

    def test_dtype_mismatch(self):
        with pytest.raises(KernelExecutionError, match="dtype"):
            run(_copy_kernel(), 4, a=np.zeros(4, np.float64), o=np.zeros(4, np.float32))

    def test_rank_mismatch(self):
        with pytest.raises(KernelExecutionError, match="rank"):
            run(_copy_kernel(), (4, 4), a=np.zeros(16, np.float32), o=np.zeros(16, np.float32))

    def test_missing_scalar(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        n = kb.scalar("n", I32)
        o[kb.global_id(0)] = kb.f32(n)
        k = kb.finish()
        with pytest.raises(KernelExecutionError, match="missing scalar"):
            run(k, 4, o=np.zeros(4, np.float32))

    def test_nonpositive_sizes(self):
        with pytest.raises(KernelExecutionError):
            run(_copy_kernel(), 0, a=np.zeros(1, np.float32), o=np.zeros(1, np.float32))


class TestIds:
    def test_2d_ids(self):
        kb = KernelBuilder("ids", work_dim=2)
        o = kb.buffer("o", I64, access="w")
        g0, g1 = kb.global_id(0), kb.global_id(1)
        o[g1 * kb.global_size(0) + g0] = g1 * 100 + g0
        k = kb.finish()
        bufs, _ = run(k, (4, 3), (2, 1), o=np.zeros(12, np.int64))
        expect = np.array([r * 100 + c for r in range(3) for c in range(4)])
        np.testing.assert_array_equal(bufs["o"], expect)

    def test_local_and_group_ids(self):
        kb = KernelBuilder("lg")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        o[g] = kb.group_id(0) * 1000 + kb.local_id(0)
        k = kb.finish()
        bufs, res = run(k, 8, 4, o=np.zeros(8, np.int64))
        np.testing.assert_array_equal(
            bufs["o"], [0, 1, 2, 3, 1000, 1001, 1002, 1003]
        )
        assert res.workgroup_count == 2

    def test_num_groups_and_local_size(self):
        kb = KernelBuilder("ng")
        o = kb.buffer("o", I64, access="w")
        o[kb.global_id(0)] = kb.num_groups(0) * 10 + kb.local_size(0)
        bufs, _ = run(kb.finish(), 6, 2, o=np.zeros(6, np.int64))
        assert (bufs["o"] == 32).all()


class TestControlFlow:
    def test_divergent_if_else(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_((g % 2).eq(0)):
            o[g] = 1.0
        with kb.else_():
            o[g] = 2.0
        bufs, _ = run(kb.finish(), 6, o=np.zeros(6, np.float32))
        np.testing.assert_array_equal(bufs["o"], [1, 2, 1, 2, 1, 2])

    def test_uniform_loop_accumulation(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("i", 0, 5) as i:
            acc = kb.let("acc", acc + kb.f32(i))
        o[g] = acc
        bufs, _ = run(kb.finish(), 3, o=np.zeros(3, np.float32))
        assert (bufs["o"] == 10.0).all()

    def test_divergent_loop_bounds(self):
        # item g loops g times: o[g] = g
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", ir.Const(0))
        with kb.loop("i", 0, g):
            acc = kb.let("acc", acc + 1)
        o[g] = acc
        bufs, _ = run(kb.finish(), 6, o=np.zeros(6, np.int64))
        np.testing.assert_array_equal(bufs["o"], np.arange(6))

    def test_negative_step_loop(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", ir.Const(0))
        with kb.loop("i", 4, 0, -1) as i:
            acc = kb.let("acc", acc + i)
        o[g] = acc
        bufs, _ = run(kb.finish(), 2, o=np.zeros(2, np.int64))
        assert (bufs["o"] == 4 + 3 + 2 + 1).all()

    def test_zero_step_rejected(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        with kb.loop("i", 0, 4, 0):
            o[kb.global_id(0)] = 1
        with pytest.raises(KernelExecutionError, match="zero step"):
            run(kb.finish(), 2, o=np.zeros(2, np.int64))

    def test_loop_variable_restored(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        kb.let("i", ir.Const(99))
        with kb.loop("i", 0, 3):
            pass
        o[g] = ir.Var("i", I64)
        bufs, _ = run(kb.finish(), 2, o=np.zeros(2, np.int64))
        assert (bufs["o"] == 99).all()

    def test_runaway_loop_guard(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        with kb.loop("i", 0, 10 ** 9):
            pass
        o[kb.global_id(0)] = 1
        interp = Interpreter(max_loop_iters=100)
        with pytest.raises(KernelExecutionError, match="exceeded"):
            interp.launch(kb.finish(), 1, buffers={"o": np.zeros(1, np.int64)})

    def test_runaway_loop_guard_message(self):
        # exact text is part of the engine contract (the compiled engine
        # must raise the identical message)
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        with kb.loop("i", 0, 10 ** 9):
            kb.barrier()
        o[kb.global_id(0)] = 1
        interp = Interpreter(max_loop_iters=7)
        with pytest.raises(
            KernelExecutionError, match=r"loop i exceeded 7 iterations"
        ):
            interp.launch(kb.finish(), 1, buffers={"o": np.zeros(1, np.int64)})

    def test_zero_trip_loop_skips_body(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", ir.Const(5))
        with kb.loop("i", 3, 3):  # empty range: body must not run
            acc = kb.let("acc", acc + 100)
        with kb.loop("j", 0, 4, -1):  # negative step away from stop
            acc = kb.let("acc", acc + 100)
        o[g] = acc
        bufs, _ = run(kb.finish(), 2, o=np.zeros(2, np.int64))
        assert (bufs["o"] == 5).all()

    def test_uniform_bounds_from_scalar_param(self):
        # the uniform-trip fast path: bounds come from a scalar argument
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        n = kb.scalar("n", I32)
        g = kb.global_id(0)
        acc = kb.let("acc", ir.Const(0))
        with kb.loop("i", 0, n) as i:
            acc = kb.let("acc", acc + i)
        o[g] = acc
        kernel = kb.finish()
        for nval, want in ((5, 10), (0, 0), (-3, 0)):
            bufs = {"o": np.zeros(2, np.int64)}
            Interpreter().launch(
                kernel, (2,), buffers=bufs, scalars={"n": nval}
            )
            assert (bufs["o"] == want).all()

    def test_uniform_negative_step_from_scalar(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        n = kb.scalar("n", I32)
        g = kb.global_id(0)
        acc = kb.let("acc", ir.Const(0))
        with kb.loop("i", n, 0, -2) as i:
            acc = kb.let("acc", acc + i)
        o[g] = acc
        bufs = {"o": np.zeros(2, np.int64)}
        Interpreter().launch(kb.finish(), (2,), buffers=bufs, scalars={"n": 7})
        assert (bufs["o"] == 7 + 5 + 3 + 1).all()

    def test_loop_variable_restored_divergent_bounds(self):
        # shadowing restore must also hold on the divergent (masked) path
        kb = KernelBuilder("k")
        o = kb.buffer("o", I64, access="w")
        g = kb.global_id(0)
        kb.let("i", ir.Const(42))
        with kb.loop("i", 0, g + 1):
            kb.barrier()
        o[g] = ir.Var("i", I64)
        bufs, _ = run(kb.finish(), 3, o=np.zeros(3, np.int64))
        assert (bufs["o"] == 42).all()


class TestMemory:
    def test_out_of_bounds_load(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = a[g + 100]
        with pytest.raises(KernelExecutionError, match="out-of-bounds"):
            run(kb.finish(), 4, a=np.zeros(4, np.float32), o=np.zeros(4, np.float32))

    def test_out_of_bounds_store(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        o[kb.global_id(0) * 10] = 1.0
        with pytest.raises(KernelExecutionError, match="out-of-bounds"):
            run(kb.finish(), 4, o=np.zeros(4, np.float32))

    def test_masked_lanes_do_not_fault(self):
        # inactive lanes compute a wild index; must not raise
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 2):
            o[g] = a[g]
        with kb.else_():
            o[g] = a[g - 2]
        bufs, _ = run(
            kb.finish(), 4,
            a=np.arange(4, dtype=np.float32), o=np.zeros(4, np.float32),
        )
        np.testing.assert_array_equal(bufs["o"], [0, 1, 0, 1])

    def test_atomic_add_global(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", I32)
        kb_g = kb.global_id(0)
        o.atomic_add(kb_g % 2, kb.i32(1))
        bufs, _ = run(kb.finish(), 10, o=np.zeros(2, np.int32))
        np.testing.assert_array_equal(bufs["o"], [5, 5])

    def test_local_memory_race_semantics(self):
        # plain local stores from many items to one slot: some value wins
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        s = kb.local_array("s", 1, F32)
        g = kb.global_id(0)
        s[0] = kb.f32(g)
        kb.barrier()
        o[g] = s[0]
        bufs, _ = run(kb.finish(), 4, 4, o=np.zeros(4, np.float32))
        assert bufs["o"][0] in {0.0, 1.0, 2.0, 3.0}
        assert (bufs["o"] == bufs["o"][0]).all()

    def test_local_memory_per_group_isolation(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        s = kb.local_array("s", 2, F32)
        lid = kb.local_id(0)
        s[lid] = kb.f32(kb.group_id(0))
        kb.barrier()
        o[kb.global_id(0)] = s[lid]
        bufs, _ = run(kb.finish(), 6, 2, o=np.zeros(6, np.float32))
        np.testing.assert_array_equal(bufs["o"], [0, 0, 1, 1, 2, 2])


class TestCounters:
    def test_counts_scale_with_lanes(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        x = kb.let("x", a[g])
        o[g] = x * x + 1.0
        _, res = run(
            kb.finish(), 8, count_ops=True,
            a=np.zeros(8, np.float32), o=np.zeros(8, np.float32),
        )
        c = res.counters
        assert c.loads == 8
        assert c.stores == 8
        assert c.flops == 16  # mul + add per lane

    def test_masked_counts(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 3):
            o[g] = kb.f32(g) * 2.0
        _, res = run(kb.finish(), 8, count_ops=True, o=np.zeros(8, np.float32))
        assert res.counters.stores == 3
        assert res.counters.flops == 3

    def test_barrier_counted(self):
        kb = KernelBuilder("k")
        o = kb.buffer("o", F32, access="w")
        kb.barrier()
        o[kb.global_id(0)] = 1.0
        _, res = run(kb.finish(), 4, 2, count_ops=True, o=np.zeros(4, np.float32))
        assert res.counters.barriers == 1


class TestIntrinsics:
    @pytest.mark.parametrize(
        "fn,np_fn",
        [
            ("exp", np.exp),
            ("log", lambda x: np.log(x)),
            ("sqrt", np.sqrt),
            ("fabs", np.abs),
            ("sin", np.sin),
            ("cos", np.cos),
            ("floor", np.floor),
        ],
    )
    def test_unary(self, fn, np_fn):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = kb.call(fn, a[g])
        x = np.linspace(0.5, 3.0, 16).astype(np.float32)
        bufs, _ = run(kb.finish(), 16, a=x, o=np.zeros(16, np.float32))
        np.testing.assert_allclose(bufs["o"], np_fn(x).astype(np.float32), rtol=1e-6)

    def test_rsqrt_pow_mad(self):
        kb = KernelBuilder("k")
        a = kb.buffer("a", F32, access="r")
        o = kb.buffer("o", F32, access="w")
        g = kb.global_id(0)
        o[g] = kb.mad(kb.rsqrt(a[g]), kb.pow(a[g], 2.0), a[g])
        x = np.linspace(1.0, 2.0, 8).astype(np.float32)
        bufs, _ = run(kb.finish(), 8, a=x, o=np.zeros(8, np.float32))
        np.testing.assert_allclose(
            bufs["o"], (x ** 2 / np.sqrt(x) + x).astype(np.float32), rtol=1e-5
        )
