"""The multi-tenant experiment service core (protocol-agnostic).

One :class:`ExperimentService` owns:

* **per-tenant sessions** — each tenant gets its own
  :class:`~repro.harness.runner.DeviceUnderTest` pair (one minicl
  ``Context`` per simulated device, with its own built-program cache),
  created lazily on first use;
* **cross-tenant deduplication** — identical work is executed once no
  matter how many tenants ask: an in-flight map coalesces concurrent
  identical requests onto one execution (followers share the leader's
  result), and a shared :class:`~repro.plancache.LaunchPlanCache` of
  completed responses serves later repeats without queueing at all.
  Launches dedupe on ``Kernel.fingerprint()`` + the *resolved* launch
  config (scaled global size, resolved local size, scalar values, buffer
  sizes, device) — the same identity the harness verify cache uses — so
  two spellings of the same launch share one execution;
* **fair scheduling** — admitted jobs land in bounded per-tenant FIFO
  queues drained round-robin by a fixed pool of worker threads
  (:func:`repro.workers.serve_worker_count` wide).  A tenant that floods
  its queue cannot starve the others: each ring pass takes at most one
  job per tenant;
* **admission control / backpressure** — a full per-tenant or global
  queue rejects the request with :class:`BackpressureError` carrying a
  retry-after estimate (queue depth x recent mean service time / worker
  count); the HTTP layer maps it to 429 + ``Retry-After``;
* **per-tenant metrics** — request counters, latency histograms, queue
  wait and dedupe savings flow into a :class:`repro.obs.metrics.
  MetricsRegistry` under ``serve.*`` / ``serve.tenant.<id>.*`` names.

Determinism contract: every request kind is a pure function of its
resolved work identity (virtual-time simulation, fixed data seed), so
sharing one execution across tenants — or serving a cached response — is
byte-equivalent to running each request serially.  The soak test
(``tests/serve/test_soak.py``) asserts exactly that.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Deque, Dict, List, Optional, Tuple, Union

import repro

from ..plancache import LaunchPlanCache
from .protocol import (
    ExperimentRequest,
    LaunchRequest,
    RequestError,
    known_benchmarks,
    launch_csv,
    parse_request,
)

__all__ = [
    "BackpressureError",
    "ExperimentService",
    "ExecutionError",
    "ServeConfig",
    "ServiceClosedError",
    "TenantSession",
    "reset_serve_stats",
    "serve_stats",
]

#: process-wide counters mirrored into the metrics registry — the same
#: pattern as ``repro.plancache``/``repro.diskcache``, so ``repro bench``
#: and the trace exporter can absorb serve activity uniformly
_STATS = {
    "requests": 0,
    "rejected": 0,
    "executed": 0,
    "errors": 0,
    "dedupe_leader": 0,
    "dedupe_shared": 0,
    "dedupe_cached": 0,
    "dedupe_persistent": 0,
}
_STATS_LOCK = threading.Lock()


def serve_stats() -> dict:
    """This process's serve activity (absorbed by ``repro.obs``)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_serve_stats() -> None:
    with _STATS_LOCK:
        for k in _STATS:
            _STATS[k] = 0


def _bump(name: str, n: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[name] += n


class BackpressureError(RuntimeError):
    """Admission control rejected the request (HTTP 429).

    ``retry_after_s`` estimates when a slot should free up: current queue
    depth x the recent mean service time, divided across the worker
    threads, clamped to [0.05s, 30s].
    """

    def __init__(self, scope: str, depth: int, limit: int,
                 retry_after_s: float):
        super().__init__(
            f"{scope} queue full ({depth}/{limit}); "
            f"retry after {retry_after_s:.2f}s"
        )
        self.scope = scope
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class ServiceClosedError(RuntimeError):
    """The service is shutting down and accepts no new work (HTTP 503)."""


class ExecutionError(RuntimeError):
    """The request was admitted but its execution raised (HTTP 500)."""


@dataclasses.dataclass
class ServeConfig:
    """Service sizing; ``0`` defers to the environment/defaults.

    Environment fallbacks: ``REPRO_SERVE_WORKERS`` (then the engine's
    ``REPRO_WORKERS`` auto-size), ``REPRO_SERVE_TENANT_QUEUE`` (default
    64) and ``REPRO_SERVE_QUEUE`` (default 256).
    """

    workers: int = 0
    tenant_queue_limit: int = 0
    global_queue_limit: int = 0
    result_cache_size: int = 4096
    #: persist completed responses to the disk cache's ``serve`` partition
    #: so dedupe survives daemon restarts and is shared with CLI runs.
    #: ``None`` defers to ``REPRO_SERVE_PERSIST`` (default off — embedded
    #: services, like the test suite's, stay process-local); the ``repro
    #: serve`` daemon turns it on.
    persistent: Optional[bool] = None

    def resolved_persistent(self) -> bool:
        if self.persistent is not None:
            return self.persistent
        return repro.env_flag("REPRO_SERVE_PERSIST")

    def resolved_workers(self) -> int:
        if self.workers > 0:
            return self.workers
        from .. import workers as workers_mod

        return workers_mod.serve_worker_count()

    def resolved_tenant_limit(self) -> int:
        if self.tenant_queue_limit > 0:
            return self.tenant_queue_limit
        return repro.env_int("REPRO_SERVE_TENANT_QUEUE", 64) or 64

    def resolved_global_limit(self) -> int:
        if self.global_queue_limit > 0:
            return self.global_queue_limit
        return repro.env_int("REPRO_SERVE_QUEUE", 256) or 256


class TenantSession:
    """Per-tenant state: its own minicl contexts and device models.

    Sessions are the isolation boundary — a tenant's contexts, queues and
    built-program cache are never shared — while everything content-
    addressed (kernel IR, input data, verify reports, JIT code, disk
    cache, completed responses) is deliberately cross-tenant.
    """

    def __init__(self, tenant: str):
        self.tenant = tenant
        self.created_monotonic = time.monotonic()
        self.requests = 0
        self._duts: Dict[str, object] = {}
        self._lock = threading.Lock()

    def dut(self, device: str):
        """The tenant's DeviceUnderTest for ``device`` (lazy, cached)."""
        from ..harness.runner import cpu_dut, gpu_dut

        with self._lock:
            dut = self._duts.get(device)
            if dut is None:
                dut = cpu_dut() if device == "cpu" else gpu_dut()
                self._duts[device] = dut
            return dut


class _Job:
    """One admitted unit of work; followers share it via ``done``."""

    __slots__ = ("request", "key", "session", "done", "payload", "error",
                 "enqueued_monotonic", "started_monotonic")

    def __init__(self, request, key, session):
        self.request = request
        self.key = key
        self.session = session
        self.done = threading.Event()
        self.payload: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.enqueued_monotonic = time.monotonic()
        self.started_monotonic: Optional[float] = None


class ExperimentService:
    """See the module docstring; one instance per daemon."""

    def __init__(self, config: Optional[ServeConfig] = None, registry=None):
        from .. import diskcache, obs

        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else obs.REGISTRY
        self._results = LaunchPlanCache(
            "serve.results", maxsize=self.config.result_cache_size
        )
        self._cond = threading.Condition()
        self._queues: Dict[str, Deque[_Job]] = {}
        self._ring: List[str] = []
        self._rr = 0
        self._depth = 0
        self._inflight: Dict[Tuple, _Job] = {}
        self._sessions: Dict[str, TenantSession] = {}
        self._sessions_lock = threading.Lock()
        self._open = True
        self._started_monotonic = time.monotonic()
        #: execution start order (tenant, kind) — fairness observability
        self.executed_order: Deque[Tuple[str, str]] = collections.deque(
            maxlen=10000
        )
        #: EWMA of service seconds, feeding the retry-after estimate
        self._service_ewma_s = 0.05
        # a long-lived service should not inherit a dead writer's litter
        diskcache.sweep_stale_tmp()
        n = self.config.resolved_workers()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve_{i}", daemon=True
            )
            for i in range(n)
        ]
        for t in self._threads:
            t.start()

    # -- public entry points ------------------------------------------------

    def submit(self, doc: dict) -> dict:
        """Parse, admit, execute (or join/serve cached) one request.

        Blocking: returns the response envelope, or raises
        :class:`~repro.serve.protocol.RequestError`,
        :class:`BackpressureError`, :class:`ServiceClosedError` or
        :class:`ExecutionError` for the transport to map onto status
        codes.
        """
        return self.submit_request(parse_request(doc))

    def submit_request(
        self, req: Union[ExperimentRequest, LaunchRequest]
    ) -> dict:
        t0 = time.monotonic()
        session = self._session(req.tenant)
        session.requests += 1
        _bump("requests")
        self.registry.counter("serve.requests").inc()
        self.registry.counter(f"serve.tenant.{req.tenant}.requests").inc()
        key = self._dedupe_key(req)

        # 1. completed-response cache (shared cross-tenant)
        payload = self._results.get(key)
        if payload is not None:
            _bump("dedupe_cached")
            self.registry.counter("serve.dedupe.cached").inc()
            self.registry.counter(
                f"serve.tenant.{req.tenant}.dedupe_hits"
            ).inc()
            return self._envelope(req, payload, "cached", t0, wait_ms=0.0)

        # 1b. persistent result cache (shared across daemon restarts and
        # with CLI runs; opt-in via ServeConfig.persistent / REPRO_SERVE_PERSIST)
        if self.config.resolved_persistent():
            from .. import diskcache

            stored = diskcache.load_serve(key)
            if stored is not None:
                payload = stored["result"]
                self._results.put(key, payload)
                _bump("dedupe_persistent")
                self.registry.counter("serve.dedupe.persistent").inc()
                self.registry.counter(
                    f"serve.tenant.{req.tenant}.dedupe_hits"
                ).inc()
                return self._envelope(req, payload, "cached", t0, wait_ms=0.0)

        # 2. in-flight dedupe or fresh admission
        with self._cond:
            if not self._open:
                raise ServiceClosedError("service is shutting down")
            job = self._inflight.get(key)
            if job is None:
                self._admit_locked(req.tenant)
                job = _Job(req, key, session)
                self._inflight[key] = job
                q = self._queues.get(req.tenant)
                if q is None:
                    q = self._queues[req.tenant] = collections.deque()
                    self._ring.append(req.tenant)
                q.append(job)
                self._depth += 1
                self.registry.gauge("serve.queue.depth").set(self._depth)
                leader = True
                _bump("dedupe_leader")
                self.registry.counter("serve.dedupe.leader").inc()
                self._cond.notify()
            else:
                leader = False
                _bump("dedupe_shared")
                self.registry.counter("serve.dedupe.shared").inc()
                self.registry.counter(
                    f"serve.tenant.{req.tenant}.dedupe_hits"
                ).inc()

        job.done.wait()
        if job.error is not None:
            raise ExecutionError(
                f"{req.kind} request failed: {job.error}"
            ) from job.error
        wait_ms = ((job.started_monotonic or job.enqueued_monotonic)
                   - job.enqueued_monotonic) * 1e3
        return self._envelope(
            req, job.payload, "leader" if leader else "shared", t0,
            wait_ms=wait_ms,
        )

    def health(self) -> dict:
        """The health endpoint's document (cheap, lock-light)."""
        with self._cond:
            depth = self._depth
            open_ = self._open
        with self._sessions_lock:
            tenants = len(self._sessions)
        return {
            "status": "ok" if open_ else "closing",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "workers": len(self._threads),
            "queue_depth": depth,
            "tenants": tenants,
            "limits": {
                "tenant_queue": self.config.resolved_tenant_limit(),
                "global_queue": self.config.resolved_global_limit(),
            },
            "stats": serve_stats(),
        }

    def metrics_snapshot(self) -> dict:
        """Everything observable in one JSON document (the /v1/metrics body).

        Folds the process-wide cache/JIT/disk/serve stats into the
        registry first, so the snapshot is self-contained.
        """
        self.registry.absorb_cache_stats()
        self.registry.absorb_jit_stats()
        self.registry.absorb_disk_cache_stats()
        self.registry.absorb_serve_stats()
        return {
            "schema": 1,
            "serve": serve_stats(),
            "results_cache": self._results.stats(),
            "metrics": self.registry.snapshot(),
        }

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work, run the queues dry, join the workers.

        Jobs already admitted complete normally (their submitters are
        blocked waiting on them); anything submitted after close raises
        :class:`ServiceClosedError`.
        """
        with self._cond:
            self._open = False
            self._cond.notify_all()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))

    # -- scheduling ----------------------------------------------------------

    def _session(self, tenant: str) -> TenantSession:
        with self._sessions_lock:
            s = self._sessions.get(tenant)
            if s is None:
                s = self._sessions[tenant] = TenantSession(tenant)
                self.registry.gauge("serve.tenants").set(len(self._sessions))
            return s

    def _admit_locked(self, tenant: str) -> None:
        """Bounded-queue admission; raises BackpressureError when full."""
        tenant_limit = self.config.resolved_tenant_limit()
        global_limit = self.config.resolved_global_limit()
        q = self._queues.get(tenant)
        tenant_depth = len(q) if q is not None else 0
        if self._depth >= global_limit:
            scope, depth, limit = "global", self._depth, global_limit
        elif tenant_depth >= tenant_limit:
            scope, depth, limit = "tenant", tenant_depth, tenant_limit
        else:
            return
        _bump("rejected")
        self.registry.counter("serve.rejected").inc()
        self.registry.counter(f"serve.tenant.{tenant}.rejected").inc()
        workers = max(1, len(self._threads))
        retry = min(30.0, max(0.05, depth * self._service_ewma_s / workers))
        raise BackpressureError(scope, depth, limit, retry)

    def _next_job_locked(self) -> Optional[_Job]:
        """Round-robin over tenants: at most one job per tenant per pass."""
        n = len(self._ring)
        for i in range(n):
            tenant = self._ring[(self._rr + i) % n]
            q = self._queues[tenant]
            if q:
                self._rr = (self._rr + i + 1) % n
                self._depth -= 1
                self.registry.gauge("serve.queue.depth").set(self._depth)
                return q.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while self._open and self._depth == 0:
                    self._cond.wait()
                if not self._open and self._depth == 0:
                    return
                job = self._next_job_locked()
            if job is not None:
                self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        job.started_monotonic = time.monotonic()
        req = job.request
        self.executed_order.append((req.tenant, req.kind))
        try:
            job.payload = self._execute_request(req, job.session)
            _bump("executed")
            self.registry.counter("serve.executed").inc()
        except BaseException as e:  # noqa: BLE001 - surfaced to submitters
            job.error = e
            _bump("errors")
            self.registry.counter("serve.errors").inc()
        finally:
            elapsed = time.monotonic() - job.started_monotonic
            self._service_ewma_s = (
                0.8 * self._service_ewma_s + 0.2 * elapsed
            )
            self.registry.histogram("serve.service_ms").observe(
                elapsed * 1e3
            )
            self.registry.histogram("serve.queue.wait_ms").observe(
                (job.started_monotonic - job.enqueued_monotonic) * 1e3
            )
            with self._cond:
                self._inflight.pop(job.key, None)
            if job.error is None and job.payload is not None:
                self._results.put(job.key, job.payload)
                if self.config.resolved_persistent():
                    from .. import diskcache

                    try:
                        diskcache.store_serve(
                            job.key, {"result": job.payload}
                        )
                    except Exception:
                        pass  # persistence is an optimization, never fatal
            job.done.set()

    # -- execution -----------------------------------------------------------

    def _dedupe_key(self, req) -> Tuple:
        """Cross-tenant work identity.

        Experiments: (name, fast).  Launches: the issue's contract —
        ``Kernel.fingerprint()`` + the resolved launch configuration
        (scaled global size, resolved local size, scalar values, buffer
        sizes) + target device, mirroring the harness verify cache key so
        differently-spelled but identical launches coalesce.
        """
        if isinstance(req, ExperimentRequest):
            return req.work_key()
        from ..harness.runner import bench_data, kernel_ir

        bench = known_benchmarks()[req.benchmark]
        gs = req.global_size or tuple(bench.default_global_sizes[0])
        kernel, launch_gs, resolved_ls = bench.resolved_launch(
            gs, coalesce=req.coalesce, local_size=req.local_size,
            kernel=kernel_ir(bench, req.coalesce),
        )
        host, scalars = bench_data(bench, gs)
        scalars = {**scalars, **bench.scalars_for(req.coalesce)}
        return (
            "launch",
            req.device,
            kernel.fingerprint(),
            launch_gs,
            resolved_ls,
            tuple(sorted((k, float(v)) for k, v in scalars.items())),
            tuple(sorted((k, int(v.shape[0])) for k, v in host.items())),
        )

    def _execute_request(self, req, session: TenantSession) -> dict:
        """Run one admitted request; returns the cacheable result payload."""
        if isinstance(req, ExperimentRequest):
            from ..harness.registry import run_experiment

            result = run_experiment(req.name, req.fast)
            return {
                "csv": result.to_csv(),
                "notes": list(result.notes),
                "title": result.title,
            }
        return self._execute_launch(req, session)

    def _execute_launch(self, req: LaunchRequest,
                        session: TenantSession) -> dict:
        from ..harness.runner import measure_kernel

        bench = known_benchmarks()[req.benchmark]
        gs = req.global_size or tuple(bench.default_global_sizes[0])
        dut = session.dut(req.device)
        m = measure_kernel(
            dut, bench, gs,
            req.local_size, coalesce=req.coalesce,
        )
        return {
            "csv": launch_csv(req, m),
            "launch": {
                "benchmark": req.benchmark,
                "device": req.device,
                "global_size": list(gs),
                "local_size": (None if req.local_size is None
                               else list(req.local_size)),
                "coalesce": req.coalesce,
                "mean_ns": m.mean_ns,
                "invocations": m.invocations,
                "total_virtual_ns": m.total_virtual_ns,
            },
        }

    # -- response assembly ---------------------------------------------------

    def _envelope(self, req, payload: dict, dedupe: str, t0: float,
                  wait_ms: float) -> dict:
        total_ms = (time.monotonic() - t0) * 1e3
        self.registry.histogram("serve.latency_ms").observe(total_ms)
        self.registry.histogram(
            f"serve.tenant.{req.tenant}.latency_ms"
        ).observe(total_ms)
        out = {
            "ok": True,
            "kind": req.kind,
            "tenant": req.tenant,
            "dedupe": dedupe,
            "csv": payload["csv"],
            "trace": {
                "queue_wait_ms": round(wait_ms, 3),
                "total_ms": round(total_ms, 3),
            },
        }
        if req.request_id is not None:
            out["request_id"] = req.request_id
        if isinstance(req, ExperimentRequest):
            out["name"] = req.name
            out["fast"] = req.fast
            out["notes"] = payload.get("notes", [])
            out["title"] = payload.get("title")
        else:
            out["benchmark"] = req.benchmark
            out["launch"] = payload.get("launch")
        return out
