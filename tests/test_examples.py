"""Smoke tests: the shipped examples run end to end.

Each example is imported and driven at a reduced size where it exposes one,
so a refactor that breaks the public API breaks the suite, not just the
docs.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestQuickstart:
    def test_runs_on_both_devices(self, capsys):
        mod = _load("quickstart")
        from repro import minicl as cl

        for platform in cl.get_platforms():
            mod.run_on(platform, n=4096)
        out = capsys.readouterr().out
        assert out.count("result verified") == 2


class TestAffinityExample:
    def test_narrated_run(self, capsys):
        mod = _load("affinity_cache")
        mod.narrated_run(n=100_000)
        mod.microscopic_view()
        out = capsys.readouterr().out
        assert "misaligned runs" in out
        assert "L3" in out


class TestReproducePaper:
    def test_subset_fast(self, capsys, tmp_path):
        mod = _load("reproduce_paper")
        rc = mod.main(["fig11", "--fast", "--csv", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig11.csv").exists()
        out = capsys.readouterr().out
        assert "fig11" in out


class TestMatmulTuning:
    def test_correctness_section(self, capsys):
        mod = _load("matrixmul_tuning")
        mod.correctness_check()
        out = capsys.readouterr().out
        assert "verified" in out

    def test_tile_sweep_small(self, capsys):
        mod = _load("matrixmul_tuning")
        mod.tile_sweep(gs=(64, 64))
        out = capsys.readouterr().out
        assert "optimal tile" in out


class TestHeteroSplit:
    def test_sweep_monotone_endpoints(self):
        mod = _load("hetero_split")
        rows = mod.sweep(128 * 128)
        assert len(rows) == 11
        # endpoints are single-device runs; all times positive
        assert all(t > 0 for _, t in rows)


class TestBlackScholesExample:
    def test_portfolio_pricing(self, capsys):
        mod = _load("blackscholes_pricing")
        mod.price_portfolio(n_side=32)
        out = capsys.readouterr().out
        assert "put-call parity residual" in out
