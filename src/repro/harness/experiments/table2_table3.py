"""Tables II and III — benchmark characteristics.

Regenerates the global/local work-size tables directly from the benchmark
definitions, so any drift between the suite and the paper is visible.
"""

from __future__ import annotations

from ...suite import all_parboil_benchmarks, all_table2_benchmarks
from ..report import ExperimentResult, Series

__all__ = ["run_table2", "run_table3"]


def _characteristics(benches, experiment_id: str, title: str) -> ExperimentResult:
    notes = []
    for b in benches:
        k = b.kernel()
        gs = ", ".join(
            " X ".join(str(x) for x in cfg) for cfg in b.default_global_sizes
        )
        ls = (
            "NULL"
            if b.default_local_size is None
            else " X ".join(str(x) for x in b.default_local_size)
        )
        notes.append(
            f"{b.name} | kernel={k.name} | global work size: {gs} | "
            f"local work size: {ls}"
        )
    series = [
        Series(
            "total workitems (first input)",
            {b.name: float(b.launch_configs()[0].total_workitems) for b in benches},
        )
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        series=series,
        value_name="workitems",
        notes=notes,
    )


def run_table2(fast: bool = False) -> ExperimentResult:
    return _characteristics(
        all_table2_benchmarks(),
        "table2",
        "Characteristics of the Simple Applications",
    )


def run_table3(fast: bool = False) -> ExperimentResult:
    return _characteristics(
        all_parboil_benchmarks(),
        "table3",
        "Characteristics of the Parboil Benchmarks",
    )
