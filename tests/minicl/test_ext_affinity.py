"""Tests for the ``cl_repro_workgroup_affinity`` extension (the paper's
Section III-E proposal, implemented)."""

import numpy as np
import pytest

from repro import minicl as cl
from repro.harness.experiments.ext_affinity import producer_consumer_times, run
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.types import F32


def scale_kernel():
    kb = KernelBuilder("scale")
    x = kb.buffer("x", F32)
    g = kb.global_id(0)
    x[g] = x[g] * 2.0
    return kb.finish()


@pytest.fixture
def cpu_ctx():
    return cl.Context(cl.cpu_platform().devices)


class TestQueueCreation:
    def test_cpu_only(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        assert q.residency.is_empty

    def test_gpu_rejected(self):
        ctx = cl.Context(cl.gpu_platform().devices)
        with pytest.raises(cl.InvalidOperation):
            cl.AffinityCommandQueue(ctx)


class TestPlacementValidation:
    def _kernel(self, ctx, n):
        h = np.ones(n, np.float32)
        b = ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        k = ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b)
        return k, b

    def test_list_placement(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        k, b = self._kernel(cpu_ctx, 64)
        ev = q.enqueue_nd_range_kernel(
            k, (64,), (16,), workgroup_affinity=[0, 1, 2, 3]
        )
        assert ev.info["placement"] == [0, 1, 2, 3]
        assert ev.info["extension"] == cl.EXTENSION_NAME

    def test_callable_placement(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        k, b = self._kernel(cpu_ctx, 64)
        ev = q.enqueue_nd_range_kernel(
            k, (64,), (16,), workgroup_affinity=lambda w: w % 2
        )
        assert ev.info["placement"] == [0, 1, 0, 1]

    def test_wrong_length_rejected(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        k, b = self._kernel(cpu_ctx, 64)
        with pytest.raises(cl.InvalidValue, match="entries"):
            q.enqueue_nd_range_kernel(k, (64,), (16,), workgroup_affinity=[0])

    def test_out_of_range_core_rejected(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        k, b = self._kernel(cpu_ctx, 64)
        with pytest.raises(cl.InvalidValue, match="out of range"):
            q.enqueue_nd_range_kernel(
                k, (64,), (16,), workgroup_affinity=[0, 1, 2, 99]
            )

    def test_unpinned_placement_varies_between_launches(self, cpu_ctx):
        q = cl.AffinityCommandQueue(cpu_ctx)
        k, b = self._kernel(cpu_ctx, 64)
        p1 = q.enqueue_nd_range_kernel(k, (64,), (16,)).info["placement"]
        p2 = q.enqueue_nd_range_kernel(k, (64,), (16,)).info["placement"]
        assert p1 != p2  # stock OpenCL: no dependable placement


class TestFunctionalCorrectness:
    def test_results_identical_to_plain_queue(self, cpu_ctx):
        n = 256
        h = np.arange(n, dtype=np.float32)
        b = cpu_ctx.create_buffer(cl.mem_flags.COPY_HOST_PTR, hostbuf=h)
        k = cpu_ctx.create_program(scale_kernel()).create_kernel("scale")
        k.set_args(b)
        q = cl.AffinityCommandQueue(cpu_ctx, functional=True)
        q.enqueue_nd_range_kernel(
            k, (n,), (64,), workgroup_affinity=[0, 1, 2, 3]
        )
        np.testing.assert_array_equal(b.array, h * 2)


class TestTheProposalPaysOff:
    def test_aligned_beats_stock_and_misaligned(self):
        n = (96_000 // 192) * 192
        stock = producer_consumer_times(n, "stock")
        aligned = producer_consumer_times(n, "aligned")
        mis = producer_consumer_times(n, "misaligned")
        assert aligned["consumer_ns"] < stock["consumer_ns"]
        assert aligned["consumer_ns"] < mis["consumer_ns"]
        # the producer is placement-indifferent (cold caches)
        assert aligned["producer_ns"] == pytest.approx(
            stock["producer_ns"], rel=0.01
        )

    def test_experiment_runs_and_reports_speedup(self):
        r = run(fast=True)
        total = {s.label: s.points["total (ms)"] for s in r.series}
        assert total["aligned"] < total["stock"]
        assert total["aligned"] < total["misaligned"]
