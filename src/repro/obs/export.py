"""Trace export: Chrome Trace Event JSON, validation, summaries, diffs.

The emitted document is the JSON *object* flavour of the Chrome Trace
Event format — ``{"traceEvents": [...], ...}`` — which both
``chrome://tracing`` and Perfetto's trace processor load directly.  Span
events are matched ``B``/``E`` pairs (never ``X``), instants are ``i``,
counters are ``C`` and track naming uses ``M`` metadata records; the
companion :func:`validate_trace` checks exactly the invariants the tests
and the CI ``trace-smoke`` job rely on:

* every event carries ``name``/``ph``/``pid``/``tid`` (+ numeric ``ts``
  for non-metadata phases);
* per ``(pid, tid)`` track, timestamps are non-decreasing and ``B``/``E``
  pairs are properly nested with matching names;
* the document declares the clock domain of every pid in ``otherData``.

:func:`summarize` renders a per-track flamegraph-style rollup (total and
self time per span name) plus the embedded metrics snapshot, and
:func:`diff` compares two such rollups — the engine behind
``python -m repro trace summarize`` and ``python -m repro trace diff``.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .metrics import REGISTRY, MetricsRegistry
from .tracer import HOST_PID, Tracer

__all__ = [
    "diff_traces",
    "load_trace",
    "span_rollup",
    "summarize",
    "to_chrome_trace",
    "validate_trace",
    "write_trace",
]

_SPAN_PHASES = {"B", "E"}
_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "M"}


def to_chrome_trace(tracer: Tracer,
                    registry: Optional[MetricsRegistry] = None) -> dict:
    """Assemble the JSON-ready document from a tracer's recorded events."""
    reg = registry if registry is not None else REGISTRY
    return {
        "traceEvents": list(tracer.events),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "clock_domains": {
                str(HOST_PID): "wall clock (us since trace start)",
                "default": "virtual device ns / 1000 (one timeline per "
                           "queue pid)",
            },
            "metrics": reg.snapshot(),
            "dropped_events": tracer.dropped,
        },
    }


def write_trace(tracer: Tracer, path,
                registry: Optional[MetricsRegistry] = None) -> pathlib.Path:
    """Serialize the trace document to ``path``; returns the path."""
    p = pathlib.Path(path)
    doc = to_chrome_trace(tracer, registry)
    p.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return p


def load_trace(path) -> dict:
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome-trace JSON object")
    return doc


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_trace(doc: dict) -> List[str]:
    """Return a list of format violations (empty == valid).

    This is the schema contract the tests pin: a trace that passes here
    loads in Perfetto / ``chrome://tracing``.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    stacks: Dict[Tuple, List[str]] = defaultdict(list)
    last_ts: Dict[Tuple, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                problems.append(f"event {i}: missing {field!r}")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if ts < last_ts.get(track, 0.0):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {track} "
                f"(last {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "B":
            stacks[track].append(ev.get("name", ""))
        elif ph == "E":
            if not stacks[track]:
                problems.append(
                    f"event {i}: E without matching B on track {track}"
                )
            else:
                opened = stacks[track].pop()
                name = ev.get("name", "")
                if name and name != opened:
                    problems.append(
                        f"event {i}: E {name!r} closes B {opened!r} "
                        f"on track {track}"
                    )
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X with bad dur {dur!r}")
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s): {stack}"
            )
    return problems


# ---------------------------------------------------------------------------
# Summaries and diffs
# ---------------------------------------------------------------------------


def _track_names(events) -> Tuple[Dict[int, str], Dict[Tuple, str]]:
    pids: Dict[int, str] = {}
    tids: Dict[Tuple, str] = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "process_name":
            pids[ev["pid"]] = ev.get("args", {}).get("name", str(ev["pid"]))
        elif ev.get("name") == "thread_name":
            tids[(ev["pid"], ev["tid"])] = ev.get("args", {}).get(
                "name", str(ev["tid"]))
    return pids, tids


def span_rollup(doc: dict) -> Dict[Tuple[str, str], dict]:
    """Aggregate spans: (clock, span name) -> count / total_us / self_us.

    ``clock`` is ``"wall"`` for the host pid and ``"virtual"`` for queue
    pids, so the two time domains are never summed together.
    """
    rollup: Dict[Tuple[str, str], dict] = {}
    stacks: Dict[Tuple, List[list]] = defaultdict(list)
    for ev in doc.get("traceEvents", ()):
        ph = ev.get("ph")
        if ph not in _SPAN_PHASES:
            continue
        track = (ev.get("pid"), ev.get("tid"))
        clock = "wall" if ev.get("pid") == HOST_PID else "virtual"
        if ph == "B":
            # [name, start_ts, child_time]
            stacks[track].append([ev.get("name", ""), ev.get("ts", 0.0), 0.0])
        elif stacks[track]:
            name, t0, child = stacks[track].pop()
            dur = max(0.0, ev.get("ts", 0.0) - t0)
            if stacks[track]:
                stacks[track][-1][2] += dur
            agg = rollup.setdefault((clock, name), {
                "count": 0, "total_us": 0.0, "self_us": 0.0,
            })
            agg["count"] += 1
            agg["total_us"] += dur
            agg["self_us"] += max(0.0, dur - child)
    return rollup


def summarize(doc: dict, top: int = 25) -> str:
    """Human-readable rollup of a trace document (text flamegraph)."""
    events = doc.get("traceEvents", ())
    pids, _ = _track_names(events)
    rollup = span_rollup(doc)
    lines: List[str] = []
    n_spans = sum(1 for e in events if e.get("ph") == "B")
    queues = [p for p in pids if p != HOST_PID]
    lines.append(
        f"trace: {len(events)} event(s), {n_spans} span(s), "
        f"{len(queues)} queue track(s)"
    )
    for clock, title in (("virtual", "virtual device time"),
                        ("wall", "host wall clock")):
        entries = sorted(
            ((name, a) for (c, name), a in rollup.items() if c == clock),
            key=lambda kv: -kv[1]["total_us"],
        )
        if not entries:
            continue
        lines.append(f"\n-- {title} (top {min(top, len(entries))} by total) --")
        width = max(len(n) for n, _ in entries[:top])
        lines.append(
            f"{'span'.ljust(width)}  {'count':>7}  {'total':>12}  "
            f"{'self':>12}"
        )
        unit = "us"
        for name, a in entries[:top]:
            lines.append(
                f"{name.ljust(width)}  {a['count']:>7}  "
                f"{a['total_us']:>10.1f}{unit}  {a['self_us']:>10.1f}{unit}"
            )
    metrics = (doc.get("otherData") or {}).get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    if counters or gauges:
        lines.append("\n-- metrics --")
        for k, v in sorted(counters.items()):
            lines.append(f"counter  {k} = {v:g}")
        for k, v in sorted(gauges.items()):
            if v is not None:
                lines.append(f"gauge    {k} = {v:g}")
    return "\n".join(lines) + "\n"


def diff_traces(doc_a: dict, doc_b: dict, top: int = 25) -> str:
    """Compare two traces' span rollups (B relative to A)."""
    ra, rb = span_rollup(doc_a), span_rollup(doc_b)
    keys = sorted(set(ra) | set(rb))
    rows = []
    for key in keys:
        a = ra.get(key, {"count": 0, "total_us": 0.0})
        b = rb.get(key, {"count": 0, "total_us": 0.0})
        delta = b["total_us"] - a["total_us"]
        rows.append((abs(delta), key, a, b, delta))
    rows.sort(key=lambda r: -r[0])
    lines = ["span time deltas (B - A), largest first:"]
    width = max([len(f"{c}:{n}") for _, (c, n), *_ in rows[:top]] + [4])
    lines.append(
        f"{'span'.ljust(width)}  {'A total':>12}  {'B total':>12}  "
        f"{'delta':>12}  {'A#':>5}  {'B#':>5}"
    )
    for _, (clock, name), a, b, delta in rows[:top]:
        lines.append(
            f"{(clock + ':' + name).ljust(width)}  {a['total_us']:>10.1f}us  "
            f"{b['total_us']:>10.1f}us  {delta:>+10.1f}us  "
            f"{a['count']:>5}  {b['count']:>5}"
        )
    return "\n".join(lines) + "\n"
