"""``Binomialoption`` — binomial-lattice option pricing.

Table II: global sizes 255000 / 2550000, local 255.  One workgroup prices
one option: workitem ``lid`` owns lattice node ``lid`` and the backward
induction walks the tree in ``steps`` barrier-separated rounds (the standard
GPU-SDK formulation, wg size = number of leaf nodes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...kernelir.ast import Kernel
from ...kernelir.builder import KernelBuilder
from ...kernelir.types import F32, I32
from ..base import Benchmark

__all__ = ["BinomialOptionBenchmark", "build_binomialoption_kernel"]

RISK_FREE = 0.02
VOLATILITY = 0.30
YEARS = 1.0


def build_binomialoption_kernel() -> Kernel:
    """One workgroup of ``steps`` items prices one option (CRR lattice)."""
    kb = KernelBuilder("binomialoption")
    S = kb.buffer("price", F32, access="r")
    X = kb.buffer("strike", F32, access="r")
    out = kb.buffer("value", F32, access="w")
    pu = kb.scalar("pu", F32)      # discounted up-probability
    pd_ = kb.scalar("pd", F32)     # discounted down-probability
    vsdt = kb.scalar("vsdt", F32)  # volatility * sqrt(dt)
    nodes = kb.local_array("nodes", 1024, F32)

    lid = kb.local_id(0)
    grp = kb.group_id(0)
    # a workgroup of S items holds S lattice nodes = a tree of S-1 time steps
    steps = kb.let("steps", kb.local_size(0))
    t_steps = kb.let("t_steps", steps - 1)

    s0 = kb.let("s0", S[grp])
    x0 = kb.let("x0", X[grp])
    # leaf price for node lid: s0 * exp(vsdt * (2*lid - (S-1)))
    up = kb.let(
        "up",
        kb.exp(vsdt * (kb.f32(2.0) * kb.cast(lid, F32) - kb.cast(t_steps, F32))),
    )
    nodes[lid] = kb.max(s0 * up - x0, kb.f32(0.0))
    kb.barrier()
    with kb.loop("step", 0, t_steps) as step:
        live = kb.let("live", t_steps - step)  # nodes [0, live) fold this round
        nxt = kb.let("nxt", kb.min(lid + 1, steps - 1))
        folded = kb.let("folded", pu * nodes[nxt] + pd_ * nodes[lid])
        v = kb.let("v", kb.select(lid < live, folded, nodes[lid]))
        kb.barrier()
        nodes[lid] = v
        kb.barrier()
    with kb.if_(lid.eq(0)):
        out[grp] = nodes[0]
    return kb.finish()


def _binomial_reference(
    s0: np.ndarray, x0: np.ndarray, wg_size: int, r: float, v: float, years: float
) -> np.ndarray:
    """Mirror the kernel: ``wg_size`` nodes = a tree of ``wg_size - 1`` steps."""
    t_steps = wg_size - 1
    dt = years / t_steps
    u = np.exp(v * np.sqrt(dt))
    d = 1.0 / u
    a = np.exp(r * dt)
    p = (a - d) / (u - d)
    df = np.exp(-r * dt)
    pu, pd = df * p, df * (1 - p)
    j = np.arange(wg_size, dtype=np.float64)
    vals = np.maximum(
        s0[:, None] * np.exp(v * np.sqrt(dt) * (2.0 * j[None, :] - t_steps))
        - x0[:, None],
        0.0,
    ).astype(np.float32)
    for live in range(t_steps, 0, -1):
        vals[:, :live] = (
            np.float32(pu) * vals[:, 1 : live + 1] + np.float32(pd) * vals[:, :live]
        )
    return vals[:, 0]


class BinomialOptionBenchmark(Benchmark):
    name = "Binomialoption"
    work_dim = 1
    default_global_sizes = ((255_000,), (2_550_000,))
    default_local_size = (255,)
    supports_coalescing = False

    def __init__(self, steps: int = 255):
        if steps > 1024:
            raise ValueError("steps may not exceed the local array size (1024)")
        self.steps = steps
        self.default_local_size = (steps,)

    def kernel(self, coalesce: int = 1) -> Kernel:
        if coalesce != 1:
            raise ValueError("Binomialoption does not support workitem coalescing")
        return build_binomialoption_kernel()

    def make_data(self, global_size: Sequence[int], rng: np.random.Generator):
        n_options = int(global_size[0]) // self.steps
        if n_options * self.steps != int(global_size[0]):
            raise ValueError(
                f"global size must be a multiple of steps={self.steps}"
            )
        dt = YEARS / (self.steps - 1)
        u = np.exp(VOLATILITY * np.sqrt(dt))
        d = 1.0 / u
        a = np.exp(RISK_FREE * dt)
        p = (a - d) / (u - d)
        df = np.exp(-RISK_FREE * dt)
        return (
            {
                "price": (rng.random(n_options, dtype=np.float32) * 95.0 + 5.0),
                "strike": (rng.random(n_options, dtype=np.float32) * 99.0 + 1.0),
                "value": np.zeros(n_options, dtype=np.float32),
            },
            {
                "pu": df * p,
                "pd": df * (1.0 - p),
                "vsdt": VOLATILITY * np.sqrt(dt),
            },
        )

    def reference(self, buffers, scalars, global_size):
        return {
            "value": _binomial_reference(
                buffers["price"].astype(np.float64),
                buffers["strike"].astype(np.float64),
                self.steps,  # workgroup size = node count
                RISK_FREE,
                VOLATILITY,
                YEARS,
            ).astype(np.float32)
        }
