"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments_and_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "ext_affinity" in out
        assert "Blackscholes" in out and "CP: cenergy" in out


class TestExperiments:
    def test_runs_subset_fast(self, capsys):
        assert main(["experiments", "fig11", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "vectorized" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "fig9" in err  # did-you-mean suggestion

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["experiments", "fig11", "--fast", "--csv", str(tmp_path)]
        ) == 0
        csv = (tmp_path / "fig11.csv").read_text()
        assert csv.startswith("series,")

    def test_run_alias(self, capsys):
        assert main(["run", "fig11", "--fast"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_jobs_csv_matches_serial(self, tmp_path, capsys):
        serial, parallel = tmp_path / "s", tmp_path / "p"
        assert main(["experiments", "fig11", "table1", "--fast",
                     "--csv", str(serial)]) == 0
        assert main(["experiments", "fig11", "table1", "--fast",
                     "--jobs", "2", "--csv", str(parallel)]) == 0
        capsys.readouterr()
        for name in ("fig11", "table1"):
            assert (serial / f"{name}.csv").read_text() == \
                   (parallel / f"{name}.csv").read_text()


class TestEmit:
    def test_emit_opencl(self, capsys):
        assert main(["emit", "Square"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void square(" in out

    def test_emit_openmp(self, capsys):
        assert main(["emit", "Vectoraddition", "--target", "openmp"]) == 0
        out = capsys.readouterr().out
        assert "#pragma omp parallel for" in out

    def test_emit_unportable_fails_cleanly(self, capsys):
        assert main(["emit", "Reduction", "--target", "openmp"]) == 1
        assert "workgroup constructs" in capsys.readouterr().err

    def test_emit_unknown_benchmark(self):
        assert main(["emit", "NoSuchApp"]) == 2

    def test_emit_many_with_jobs_matches_serial(self, capsys):
        assert main(["emit", "Square", "Vectoraddition"]) == 0
        serial = capsys.readouterr().out
        assert main(["emit", "Square", "Vectoraddition", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestBench:
    def test_bench_subset_json(self, capsys):
        import json

        assert main(["bench", "--quick", "--no-speedup", "table1"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["schema"] == 1
        assert "table1" in doc["runs"]["quick"]["experiments"]

    def test_bench_compare_gate(self, tmp_path, capsys):
        import json

        slow = {"schema": 1, "runs": {"quick": {
            "mode": "quick", "experiments": {}, "total_seconds": 1e-9,
        }}}
        p = tmp_path / "base.json"
        p.write_text(json.dumps(slow))
        assert main(["bench", "--quick", "--no-speedup", "fig11",
                     "--compare", str(p)]) == 1
        capsys.readouterr()


class TestReport:
    def test_report_for_square(self, capsys):
        assert main(["report", "Square", "--size", "100000"]) == 0
        out = capsys.readouterr().out
        assert "kernel performance report: square" in out
        assert "bottleneck" in out and "verdict" in out

    def test_report_default_size(self, capsys):
        assert main(["report", "Prefixsum"]) == 0
        out = capsys.readouterr().out
        assert "prefixSum" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["report", "NoSuchApp"]) == 2

    def test_unknown_benchmark_suggests_close_name(self, capsys):
        assert main(["report", "Sqare"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'Sqare'" in err
        assert "did you mean" in err and "Square" in err


class TestLint:
    def test_lint_all_is_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "0 warning(s)" in out
        assert "clean" in out

    def test_lint_single_benchmark(self, capsys):
        assert main(["lint", "Square"]) == 0
        out = capsys.readouterr().out
        assert "linted 1 kernel(s)" in out

    def test_lint_reports_vectorization_notes(self, capsys):
        assert main(["lint", "Blackscholes"]) == 0
        out = capsys.readouterr().out
        assert "R-VEC" in out and "erf" in out

    def test_lint_no_notes_flag(self, capsys):
        assert main(["lint", "Blackscholes", "--no-notes"]) == 0
        out = capsys.readouterr().out
        assert "R-VEC" not in out

    def test_lint_covers_micro_families(self, capsys):
        assert main(["lint", "MBench5", "ILP-3"]) == 0
        out = capsys.readouterr().out
        assert "linted 2 kernel(s)" in out

    def test_lint_unknown_benchmark(self, capsys):
        assert main(["lint", "NoSuchApp"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestExperimentsOnlyAndTrace:
    def test_only_accepts_module_style_names(self, tmp_path, capsys):
        assert main(["experiments", "--only", "fig7_transfer_api",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_only_module_name_expands_to_all_its_keys(self, capsys):
        assert main(["experiments", "--only", "table2_table3",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "table3" in out

    def test_only_unknown_name(self, capsys):
        assert main(["experiments", "--only", "fig7_transfr_api"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "did you mean" in err

    def test_trace_writes_valid_json_and_identical_csv(self, tmp_path,
                                                       capsys):
        from repro import obs

        plain, traced = tmp_path / "plain", tmp_path / "traced"
        trace = tmp_path / "t.json"
        assert main(["experiments", "fig11", "--fast",
                     "--csv", str(plain)]) == 0
        assert main(["experiments", "fig11", "--fast",
                     "--csv", str(traced), "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert (plain / "fig11.csv").read_text() == \
               (traced / "fig11.csv").read_text()
        doc = obs.load_trace(trace)
        assert obs.validate_trace(doc) == []
        assert doc["otherData"]["metrics"]["gauges"]

    def test_trace_forces_serial_jobs(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["experiments", "fig11", "--fast", "--jobs", "4",
                     "--trace", str(trace)]) == 0
        assert "forces --jobs 1" in capsys.readouterr().err
        assert trace.exists()


class TestTraceSubcommand:
    def test_record_then_summarize(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["trace", "record", "fig11", "--fast",
                     "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "virtual device time" in out
        assert "queue track" in out

    def test_summarize_rejects_invalid_trace(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 2.0},
        ]}))
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_summarize_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "no.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_diff_two_recordings(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "record", "fig11", "--fast",
                     "--out", str(a)]) == 0
        assert main(["trace", "record", "table1", "--fast",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "experiment" in out


class TestBenchTrend:
    def _baseline(self, tmp_path, name, seconds):
        import json

        p = tmp_path / name
        p.write_text(json.dumps({"schema": 1, "runs": {"quick": {
            "mode": "quick", "experiments": {}, "total_seconds": seconds,
        }}}))
        return p

    def test_multiple_baselines_print_trend(self, tmp_path, capsys):
        old = self._baseline(tmp_path, "old.json", 500.0)
        new = self._baseline(tmp_path, "new.json", 400.0)
        assert main(["bench", "--quick", "--no-speedup", "table1",
                     "--compare", str(old), "--compare", str(new)]) == 0
        out = capsys.readouterr().out
        assert "trend" in out
        assert "old.json" in out and "new.json" in out
        assert "vs previous baseline" in out

    def test_gating_uses_last_baseline(self, tmp_path, capsys):
        generous = self._baseline(tmp_path, "gen.json", 500.0)
        tiny = self._baseline(tmp_path, "tiny.json", 1e-9)
        assert main(["bench", "--quick", "--no-speedup", "fig11",
                     "--compare", str(generous),
                     "--compare", str(tiny)]) == 1
        capsys.readouterr()
