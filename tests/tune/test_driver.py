"""Tuner driver end-to-end + the ``--tuned`` opt-in overlay."""

import json

import pytest

from repro import diskcache
from repro.harness.runner import cpu_dut, measure_kernel
from repro.tune import (
    KnobPoint,
    reset_tune_stats,
    suite_benchmarks,
    tune,
    tune_stats,
    tuned_comparison,
)


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.reset_disk_cache_stats()
    reset_tune_stats()
    yield tmp_path
    diskcache.reset_disk_cache_stats()
    reset_tune_stats()


class TestTune:
    def test_document_shape_and_improvement(self, cache_root):
        doc = tune(["Square"], strategy="grid", log=lambda *a: None)
        assert doc["schema"] == 1
        cfg = doc["configs"]["Square"]
        assert cfg["strategy"] == "grid"
        d = cfg["default"]["result"]
        b = cfg["best"]["result"]
        assert b["score"] <= d["score"]
        assert cfg["speedup"] >= 1.0
        if cfg["improved"]:
            assert cfg["best"]["point"] != cfg["default"]["point"]
        stats = tune_stats()
        assert stats["sweeps"] == 1
        assert stats["benchmarks_tuned"] == 1

    def test_unknown_benchmark_raises(self, cache_root):
        with pytest.raises(KeyError):
            tune(["Nope"], log=lambda *a: None)

    def test_unknown_strategy_raises(self, cache_root):
        with pytest.raises(ValueError):
            tune(["Square"], strategy="magic", log=lambda *a: None)

    def test_affinity_points_are_measurable(self, cache_root):
        doc = tune(["Square"], strategy="random", budget=8, affinity=True,
                   log=lambda *a: None)
        cfg = doc["configs"]["Square"]
        assert cfg["evaluated_points"] >= 1
        assert cfg["best"]["result"]["value"] > 0

    def test_app_objective_maximizes_throughput(self, cache_root):
        doc = tune(["Square"], objective="app", strategy="grid", budget=6,
                   log=lambda *a: None)
        cfg = doc["configs"]["Square"]
        assert cfg["best"]["result"]["units"] == "items_per_ns"
        assert (
            cfg["best"]["result"]["value"]
            >= cfg["default"]["result"]["value"]
        )

    def test_pruned_axis_stays_pinned(self, cache_root):
        # MatrixmulNaive is bandwidth-bound with negligible per-item
        # overhead, so the driver must refuse to sweep coarsening on it
        doc = tune(["MatrixmulNaive"], strategy="grid", budget=4,
                   log=lambda *a: None)
        cfg = doc["configs"]["MatrixmulNaive"]
        assert not cfg["pruning"]["sweep_coalesce"]
        assert cfg["best"]["point"]["coalesce"] == 1


class TestTunedComparison:
    def test_comparison_is_all_hits_after_a_sweep(self, cache_root, tmp_path):
        doc = tune(["Square"], strategy="grid", budget=6,
                   log=lambda *a: None)
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps(doc))
        before = diskcache.disk_cache_stats()["tune_misses"]
        cmp = tuned_comparison(path, log=lambda *a: None)
        assert diskcache.disk_cache_stats()["tune_misses"] == before
        row = cmp["Square"]
        assert row["speedup"] == pytest.approx(
            doc["configs"]["Square"]["speedup"], rel=1e-6
        )

    def test_bad_schema_rejected(self, cache_root, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps({"schema": 99, "configs": {}}))
        with pytest.raises(ValueError):
            tuned_comparison(path, log=lambda *a: None)


class TestTunedOverlay:
    def _tuned_file(self, tmp_path, bench, point):
        gs = bench.default_global_sizes[0]
        doc = {
            "schema": 1,
            "configs": {
                bench.name: {
                    "global_size": list(gs),
                    "objective": "kernel",
                    "default": {
                        "point": KnobPoint().to_payload(),
                        "result": {"value": 1.0, "units": "ns", "score": 1.0},
                    },
                    "best": {
                        "point": point.to_payload(),
                        "result": {"value": 0.5, "units": "ns", "score": 0.5},
                    },
                }
            },
        }
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps(doc))
        return path

    def test_overlay_swaps_default_launches_only(
        self, cache_root, tmp_path, monkeypatch
    ):
        bench = suite_benchmarks()["Square"]
        gs = bench.default_global_sizes[0]  # (10000,): 10000/4 % 50 == 0
        tuned = KnobPoint(local_size=(50,), coalesce=4)
        dut = cpu_dut()

        base = measure_kernel(dut, bench, gs).mean_ns
        explicit_tuned = measure_kernel(
            dut, bench, gs, (50,), coalesce=4
        ).mean_ns
        explicit_other = measure_kernel(dut, bench, gs, (100,)).mean_ns
        assert explicit_tuned != base

        monkeypatch.setenv(
            "REPRO_TUNED", str(self._tuned_file(tmp_path, bench, tuned))
        )
        # a paper-default launch now gets the tuned configuration...
        assert measure_kernel(dut, bench, gs).mean_ns == explicit_tuned
        # ...but explicitly-configured launches keep their knobs
        assert measure_kernel(dut, bench, gs, (100,)).mean_ns == explicit_other
        assert (
            measure_kernel(dut, bench, gs, coalesce=2).mean_ns
            != explicit_tuned
        )

    def test_overlay_suspended_inside_the_tuner(
        self, cache_root, tmp_path, monkeypatch
    ):
        from repro.harness.runner import tuned_overlay_disabled

        bench = suite_benchmarks()["Square"]
        gs = bench.default_global_sizes[0]
        dut = cpu_dut()
        base = measure_kernel(dut, bench, gs).mean_ns
        monkeypatch.setenv(
            "REPRO_TUNED",
            str(self._tuned_file(
                tmp_path, bench, KnobPoint(local_size=(128,), coalesce=4)
            )),
        )
        with tuned_overlay_disabled():
            assert measure_kernel(dut, bench, gs).mean_ns == base

    def test_missing_file_is_ignored(self, cache_root, monkeypatch):
        bench = suite_benchmarks()["Square"]
        gs = bench.default_global_sizes[0]
        dut = cpu_dut()
        base = measure_kernel(dut, bench, gs).mean_ns
        monkeypatch.setenv("REPRO_TUNED", "/nonexistent/tuned.json")
        assert measure_kernel(dut, bench, gs).mean_ns == base
