"""Performance-tracking benchmarks of the substrate itself.

These do not regenerate paper artifacts; they watch the host-side speed of
the hot paths (lock-step interpreter, static analysis, cache simulator,
scheduler) so substrate regressions show up in benchmark history.
"""

import numpy as np

from repro.kernelir.analysis import LaunchContext, analyze_kernel
from repro.kernelir.interp import Interpreter
from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.device import CPUDeviceModel
from repro.simcpu.scheduler import WorkgroupScheduler
from repro.simcpu.spec import XEON_E5645
from repro.suite import build_ilp_kernel
from repro.suite.simple.blackscholes import build_blackscholes_kernel
from repro.suite.simple.square import build_square_kernel


def test_interpreter_elementwise_throughput(benchmark):
    """1M-workitem elementwise kernel through the lock-step interpreter."""
    k = build_square_kernel()
    n = 1 << 20
    a = np.random.default_rng(0).random(n).astype(np.float32)

    def run():
        bufs = {"input": a, "output": np.zeros(n, np.float32)}
        Interpreter().launch(k, n, 256, buffers=bufs)
        return bufs["output"]

    out = benchmark(run)
    assert np.allclose(out, a * a)


def test_interpreter_looped_kernel(benchmark):
    """ILP microbenchmark: ~2k-instruction loop body, 4k workitems."""
    k = build_ilp_kernel(4)
    n = 4096

    def run():
        bufs = {"data": np.ones(n, np.float32)}
        Interpreter().launch(k, n, 256, buffers=bufs)
        return bufs["data"]

    out = benchmark(run)
    assert np.isfinite(out).all()


def test_static_analysis_speed(benchmark):
    """analyze_kernel on the heaviest kernel (Black-Scholes, 192 rounds)."""
    k = build_blackscholes_kernel()
    ctx = LaunchContext((1280, 1280), (16, 16), {"riskfree": 0.02, "volatility": 0.3})
    an = benchmark(analyze_kernel, k, ctx)
    assert an.per_item.flops > 100


def test_kernel_cost_speed(benchmark):
    """Full CPU timing pipeline (analysis + vectorize + cache + schedule)."""
    dev = CPUDeviceModel()
    k = build_square_kernel(100)
    cost = benchmark(
        dev.kernel_cost, k, (100_000,), None,
        scalars={"n_per": 100},
        buffer_bytes={"input": 4 * 10_000_000, "output": 4 * 10_000_000},
    )
    assert cost.total_ns > 0


def test_cache_simulator_throughput(benchmark):
    """100k accesses through the exact hierarchy."""
    addrs = np.random.default_rng(0).integers(0, 1 << 22, 100_000)

    def run():
        h = CacheHierarchy(4)
        for a in addrs[:20_000]:
            h.access(int(a) % 4, int(a))
        return h.total_stats()["L1"].accesses

    n = benchmark(run)
    assert n == 20_000


def test_scheduler_hetero_throughput(benchmark):
    """Event-driven makespan over 10k heterogeneous workgroups."""
    costs = np.random.default_rng(0).uniform(100, 10_000, 10_000).tolist()
    sched = WorkgroupScheduler(XEON_E5645)
    r = benchmark(sched.makespan_hetero, costs)
    assert r.makespan_cycles > 0
