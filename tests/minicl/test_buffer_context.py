"""Unit tests for platforms, contexts, devices and buffers."""

import numpy as np
import pytest

from repro import minicl as cl


@pytest.fixture
def ctx():
    return cl.Context(cl.cpu_platform().devices)


class TestPlatforms:
    def test_two_platforms(self):
        plats = cl.get_platforms()
        assert len(plats) == 2
        types = [p.devices[0].type for p in plats]
        assert cl.device_type.CPU in types and cl.device_type.GPU in types

    def test_get_devices_filters(self):
        p = cl.cpu_platform()
        assert p.get_devices(cl.device_type.CPU)
        with pytest.raises(cl.InvalidDevice):
            p.get_devices(cl.device_type.GPU)

    def test_device_info(self):
        d = cl.cpu_platform().devices[0]
        info = d.get_info()
        assert info["CL_DEVICE_HOST_UNIFIED_MEMORY"] is True
        assert info["CL_DEVICE_MAX_COMPUTE_UNITS"] == 24
        g = cl.gpu_platform().devices[0]
        assert g.get_info()["CL_DEVICE_HOST_UNIFIED_MEMORY"] is False

    def test_platform_info(self):
        info = cl.cpu_platform().get_info()
        assert "OpenCL 1.1" in info["CL_PLATFORM_VERSION"]

    def test_context_requires_devices(self):
        with pytest.raises(cl.InvalidDevice):
            cl.Context([])


class TestBufferCreation:
    def test_from_size(self, ctx):
        b = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=1024, dtype=np.float32)
        assert b.nbytes == 1024
        assert len(b) == 256
        assert (b.array == 0).all()

    def test_default_access_is_read_write(self, ctx):
        b = ctx.create_buffer(cl.mem_flags(0), size=64)
        assert b.kernel_readable and b.kernel_writable

    def test_copy_host_ptr_snapshots(self, ctx):
        h = np.arange(8, dtype=np.float32)
        b = ctx.create_buffer(
            cl.mem_flags.READ_ONLY | cl.mem_flags.COPY_HOST_PTR, hostbuf=h
        )
        h[0] = 99
        assert b.array[0] == 0  # snapshot, not aliased
        assert not b.kernel_writable

    def test_use_host_ptr_aliases(self, ctx):
        h = np.arange(8, dtype=np.float32)
        b = ctx.create_buffer(cl.mem_flags.USE_HOST_PTR, hostbuf=h)
        h[0] = 99
        assert b.array[0] == 99
        assert b.pinned

    def test_alloc_host_ptr_is_pinned(self, ctx):
        b = ctx.create_buffer(
            cl.mem_flags.ALLOC_HOST_PTR, size=64, dtype=np.float32
        )
        assert b.pinned
        b2 = ctx.create_buffer(cl.mem_flags.READ_WRITE, size=64, dtype=np.float32)
        assert not b2.pinned


class TestBufferValidation:
    def test_conflicting_access_flags(self, ctx):
        with pytest.raises(cl.InvalidValue):
            ctx.create_buffer(
                cl.mem_flags.READ_ONLY | cl.mem_flags.WRITE_ONLY, size=64
            )

    def test_host_ptr_flags_need_hostbuf(self, ctx):
        with pytest.raises(cl.InvalidValue):
            ctx.create_buffer(cl.mem_flags.USE_HOST_PTR, size=64)

    def test_use_and_alloc_exclusive(self, ctx):
        h = np.zeros(4, np.float32)
        with pytest.raises(cl.InvalidValue):
            ctx.create_buffer(
                cl.mem_flags.USE_HOST_PTR | cl.mem_flags.ALLOC_HOST_PTR, hostbuf=h
            )

    def test_bad_size(self, ctx):
        with pytest.raises(cl.InvalidBufferSize):
            ctx.create_buffer(cl.mem_flags.READ_WRITE, size=0)
        with pytest.raises(cl.InvalidBufferSize):
            ctx.create_buffer(cl.mem_flags.READ_WRITE, size=7, dtype=np.float32)

    def test_2d_hostbuf_rejected(self, ctx):
        with pytest.raises(cl.InvalidValue):
            ctx.create_buffer(
                cl.mem_flags.COPY_HOST_PTR, hostbuf=np.zeros((2, 2), np.float32)
            )


class TestErrors:
    def test_error_codes(self):
        e = cl.InvalidWorkGroupSize("x")
        assert "INVALID_WORK_GROUP_SIZE" in str(e)
        assert e.code.value == -54
        assert isinstance(e, cl.CLError)
