"""Differential kernel-IR fuzzing: the dataflow framework's correctness oracle.

:func:`run_fuzz` generates random (but well-formed) kernels with
:class:`~repro.kernelir.builder.KernelBuilder` and holds the runtime to two
invariants per kernel:

1. **Engine agreement** — the interpreter, the JIT-compiled fused engine,
   and the fused engine split across a 4-thread chunk pool must produce
   bit-identical buffers and dynamic counters.  The generator deliberately
   emits racy stores (``out[gid // 2]``, ``out[0]``, neighbor overlaps):
   under the lockstep engines those are still deterministic, so any
   divergence is an engine bug.
2. **Chunk soundness** — the multi-worker rerun shrinks the chunking
   threshold so that *every* launch the analysis called chunk-safe really
   splits across threads.  If :func:`repro.kernelir.dataflow.chunk_safety`
   says "safe" for a kernel whose chunked run then disagrees with the
   serial run, that is an unsound verdict in the dataflow framework — the
   exact failure mode that would silently corrupt the paper's multi-core
   scaling results.
3. **Transform soundness** — every compiled kernel additionally runs
   thread-coarsened at K in {2, 4} (forced where legal; illegal launches
   fall back transparently, see :mod:`repro.kernelir.coarsen`) and must
   stay bit-identical to the interpreter, counters included; and every
   kernel is fused with a fixed consumer of its ``out`` buffer
   (:func:`repro.kernelir.fuse.fuse_kernels`, the scheduler's
   producer->consumer transform) and the single fused launch must leave
   every buffer bit-identical to the two sequential launches.

Generated kernels never read a buffer they write (cross-workitem
read-after-write is legitimately engine-dependent, and the analysis
correctly refuses to chunk it — but it would make invariant 1 vacuous), and
every index is clamped in-bounds so the differential run exercises value
semantics, not error paths (those have their own differential tests).

``python -m repro fuzz --seeds N [--base-seed B] [--quick] [--verbose]``
drives this; CI runs the 200-seed quick smoke on a fixed seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import ast as ir
from .builder import KernelBuilder
from .interp import Interpreter
from .types import F32, I32, I64

__all__ = ["FuzzResult", "random_kernel", "run_fuzz"]


@dataclasses.dataclass
class FuzzResult:
    """Aggregate outcome of one fuzzing run."""

    seeds: int = 0
    compiled: int = 0
    interp_fallback: int = 0
    chunk_eligible: int = 0
    chunked_runs: int = 0
    coarsened_runs: int = 0
    fused_runs: int = 0
    mismatches: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


# ---------------------------------------------------------------------------
# Random kernel generation
# ---------------------------------------------------------------------------

#: local size used by generated barrier kernels (must divide every n below)
_TILE = 16


def random_kernel(seed: int) -> Tuple[ir.Kernel, int]:
    """One random kernel; returns ``(kernel, required_local_size)`` where
    the local size is 0 when the kernel imposes no workgroup shape."""
    rng = random.Random(seed)
    kb = KernelBuilder(f"fuzz{seed}")
    a = kb.buffer("a", F32, access="r")
    b = kb.buffer("b", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    iout = kb.buffer("iout", I32, access="w")
    n = kb.scalar("n", I32)
    c = kb.scalar("c", F32)
    gid = kb.global_id(0)

    fresh = iter(range(1000))

    def leaf():
        k = rng.randrange(6)
        if k == 0:
            return a[gid]
        if k == 1:
            return b[gid]
        if k == 2:
            return kb.f32(round(rng.uniform(-4.0, 4.0), 3))
        if k == 3:
            return c
        if k == 4:
            return kb.cast(gid, F32)
        return a[gid]

    def fexpr(depth: int):
        if depth <= 0:
            return leaf()
        x = fexpr(depth - 1)
        k = rng.randrange(10)
        if k < 3:
            y = fexpr(depth - 1)
            op = rng.choice(["+", "-", "*"])
            return ir.BinOp(op, ir.as_expr(x), ir.as_expr(y))
        if k == 3:
            return kb.min(x, fexpr(depth - 1))
        if k == 4:
            return kb.max(x, fexpr(depth - 1))
        if k == 5:
            return kb.fabs(x)
        if k == 6:
            return kb.sqrt(kb.fabs(x))
        if k == 7:
            # division kept well-defined: |divisor| >= 1 by construction
            y = fexpr(depth - 1)
            return ir.BinOp("/", ir.as_expr(x),
                            ir.as_expr(kb.fabs(y) + kb.f32(1.0)))
        if k == 8:
            y = fexpr(depth - 1)
            cond = ir.BinOp(rng.choice(["<", "<=", ">"]),
                            ir.as_expr(x), ir.as_expr(y))
            return kb.select(cond, x, y)
        return kb.mad(x, fexpr(depth - 1), fexpr(depth - 1))

    # a couple of named temporaries the stores below can reuse
    temps = []
    for _ in range(rng.randrange(1, 3)):
        t = kb.let(f"t{next(fresh)}", fexpr(rng.randrange(1, 4)))
        temps.append(t)

    def operand():
        return rng.choice(temps) if temps and rng.random() < 0.5 else fexpr(2)

    # optional accumulation loop (constant trips, possibly zero)
    if rng.random() < 0.5:
        trips = rng.choice([0, 1, 2, 3, 5])
        acc = kb.let(f"acc{next(fresh)}", kb.f32(0.0))
        with kb.loop(f"j{next(fresh)}", 0, trips) as j:
            kb.let(acc.name, acc + operand() * (kb.cast(j, F32) + kb.f32(1.0)))
        temps.append(acc)

    # optional divergent branch around a store
    if rng.random() < 0.5:
        with kb.if_(gid < kb.cast(n, I64) - rng.randrange(0, 3)):
            out[gid] = operand()
        if rng.random() < 0.5:
            with kb.else_():
                out[gid] = operand()

    # optional barrier/local tile (always chunk-ineligible, engine-equal)
    if rng.random() < 0.15:
        tile = kb.local_array(f"tile{next(fresh)}", _TILE, F32)
        lid = kb.local_id(0)
        tile[lid] = operand()
        kb.barrier()
        out[gid] = tile[ir.Const(_TILE - 1, I64) - lid]

    # the main store: usually injective, sometimes deliberately racy —
    # the analysis must then refuse to chunk the launch
    r = rng.random()
    if r < 0.55:
        out[gid] = operand()
        if rng.random() < 0.3:
            out[gid] = operand()  # provable dead store above
    elif r < 0.7:
        out[kb.cast(n, I64) - ir.Const(1, I64) - gid] = operand()
    elif r < 0.8:
        out[gid // 2] = operand()
    elif r < 0.9:
        out[kb.min(gid + 1, kb.cast(n, I64) - ir.Const(1, I64))] = operand()
    else:
        out[ir.Const(0, I64)] = operand()

    # an integer store exercising int arithmetic (values clamped pre-cast)
    if rng.random() < 0.5:
        clamped = kb.min(kb.max(operand(), kb.f32(-1000.0)), kb.f32(1000.0))
        iv = kb.cast(clamped, I32) + kb.cast(gid % (rng.randrange(2, 8)), I32)
        iout[gid] = iv

    kernel = kb.finish()
    needs_tile = bool(kernel.local_arrays)
    return kernel, (_TILE if needs_tile else 0)


def _make_data(n: int, seed: int) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    drng = np.random.default_rng(seed)
    buffers = {
        "a": drng.uniform(-8.0, 8.0, n).astype(np.float32),
        "b": drng.uniform(-8.0, 8.0, n).astype(np.float32),
        "out": np.zeros(n, np.float32),
        "iout": np.zeros(n, np.int32),
    }
    scalars: Dict[str, object] = {"n": n, "c": float(round(drng.uniform(-2, 2), 3))}
    return buffers, scalars


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------


def _launch_interp(kernel, n, ls, buffers, scalars):
    bufs = {k: v.copy() for k, v in buffers.items()}
    res = Interpreter().launch(kernel, (n,), ls, buffers=bufs,
                               scalars=dict(scalars), count_ops=True)
    return bufs, dataclasses.asdict(res.counters)


_CONSUMER: Optional[ir.Kernel] = None


def _consumer_kernel() -> ir.Kernel:
    """The fixed consumer the fusion leg feeds ``out`` into.

    Its ``src`` gets bound to the producer's ``out`` array and its ``a``
    to the producer's ``a`` (exercising the shared-buffer collapse), and
    its scalar deliberately reuses the producer's name ``c`` so the
    B-side rename path (``c__f1``) is covered on every seed.
    """
    global _CONSUMER
    if _CONSUMER is None:
        kb = KernelBuilder("fuzzcons")
        src = kb.buffer("src", F32, access="r")
        a = kb.buffer("a", F32, access="r")
        fdst = kb.buffer("fdst", F32, access="w")
        c = kb.scalar("c", F32)
        gid = kb.global_id(0)
        fdst[gid] = src[gid] * c + a[gid]
        _CONSUMER = kb.finish()
    return _CONSUMER


def _run_fused_leg(kernel, n, ls, buffers, scalars,
                   result: FuzzResult) -> None:
    """Producer->consumer fusion leg: one fused launch vs two sequential.

    Fusion must never change observable memory, whichever engine runs the
    fused kernel, so the reference is always the sequential interpreter.
    """
    from . import compile as jit
    from .fuse import FuseError, fuse_kernels

    consumer = _consumer_kernel()
    try:
        fk = fuse_kernels(kernel, consumer, {"src": "out", "a": "a"})
    except FuseError:
        return
    c2 = 0.625  # exactly representable: fused math must be bit-equal

    ref = {k: v.copy() for k, v in buffers.items()}
    ref["fdst"] = np.zeros(n, np.float32)
    Interpreter().launch(
        kernel, (n,), ls,
        buffers={k: ref[k] for k in ("a", "b", "out", "iout")},
        scalars=dict(scalars))
    Interpreter().launch(
        consumer, (n,), ls,
        buffers={"src": ref["out"], "a": ref["a"], "fdst": ref["fdst"]},
        scalars={"c": c2})

    got = {k: v.copy() for k, v in buffers.items()}
    got["fdst"] = np.zeros(n, np.float32)
    fscalars = dict(scalars)
    fscalars[fk.scalar_map["c"]] = c2
    fbufs = {p.name: got[p.name] for p in fk.kernel.buffer_params}
    fck = jit.get_compiled(fk.kernel)
    if fck is not None:
        plan = jit.get_fused_plan(fck, (n,), ls, None, fscalars)
        plan.launch(fbufs, dict(fscalars))
    else:
        Interpreter().launch(fk.kernel, (n,), ls, buffers=fbufs,
                             scalars=dict(fscalars))
    result.fused_runs += 1

    for name in ref:
        if not np.array_equal(ref[name], got[name]):
            result.mismatches.append(
                f"{kernel.name}: buffer {name!r} diverged "
                f"(fused {fk.kernel.name} vs sequential launches)"
            )
            return


def _compare(tag: str, kernel, ref, got, result: FuzzResult) -> bool:
    ref_bufs, ref_counters = ref
    got_bufs, got_counters = got
    for name in ref_bufs:
        if not np.array_equal(ref_bufs[name], got_bufs[name]):
            result.mismatches.append(
                f"{kernel.name}: buffer {name!r} diverged ({tag})"
            )
            return False
    if ref_counters != got_counters:
        result.mismatches.append(
            f"{kernel.name}: dynamic counters diverged ({tag})"
        )
        return False
    return True


def run_fuzz(seeds: int = 200, base_seed: int = 0, quick: bool = False,
             verbose: bool = False) -> int:
    """Generate ``seeds`` kernels and differentially check the engines and
    the chunk-safety verdicts.  Returns a process exit code (0 = clean)."""
    from .. import workers
    from . import compile as jit
    from .dataflow import chunk_safety

    sizes = [256] if quick else [1024, 4096]
    result = FuzzResult()
    saved_lanes = jit._MIN_CHUNK_LANES
    try:
        for i in range(seeds):
            seed = base_seed + i
            kernel, tile = random_kernel(seed)
            n = sizes[seed % len(sizes)]
            ls = (tile,) if tile else None
            buffers, scalars = _make_data(n, seed)
            result.seeds += 1

            ref = _launch_interp(kernel, n, ls, buffers, scalars)

            # fusion leg runs for every seed: the fused kernel may compile
            # even when the producer alone is interpreter-only, and the
            # invariant (memory unchanged) is engine-independent
            _run_fused_leg(kernel, n, ls, buffers, scalars, result)

            # resolve the local size exactly like the fused-plan path, so
            # the recorded verdict matches the plan's parallel gate
            rgs, rls = jit._normalize_sizes(kernel, (n,), ls)
            cs = chunk_safety(kernel, rgs, rls, scalars)
            if cs.eligible:
                result.chunk_eligible += 1

            ck = jit.get_compiled(kernel, count_ops=True)
            if ck is None:
                result.interp_fallback += 1
                if verbose:
                    print(f"fuzz{seed}: n={n} interpreter-only")
                continue
            result.compiled += 1

            # serial compiled run
            plan = jit.get_fused_plan(ck, (n,), ls, None, scalars)
            bufs_c = {k: v.copy() for k, v in buffers.items()}
            res_c = plan.launch(bufs_c, dict(scalars))
            ok = _compare("compiled vs interp", kernel, ref,
                          (bufs_c, dataclasses.asdict(res_c.counters)), result)

            # chunked multi-core rerun: force the threshold low so every
            # analysis-approved launch actually splits across 4 workers
            if ok:
                jit._MIN_CHUNK_LANES = 8
                workers.set_worker_count(4)
                try:
                    bufs_p = {k: v.copy() for k, v in buffers.items()}
                    res_p = plan.launch(bufs_p, dict(scalars))
                finally:
                    jit._MIN_CHUNK_LANES = saved_lanes
                    workers.set_worker_count(None)
                chunked = plan.parallel and n // 8 >= 2
                if chunked:
                    result.chunked_runs += 1
                if not _compare("4-worker chunked vs interp", kernel, ref,
                                (bufs_p, dataclasses.asdict(res_p.counters)),
                                result):
                    if cs.eligible and chunked:
                        result.mismatches[-1] += (
                            " — UNSOUND chunk-safe verdict from the dataflow "
                            "analysis"
                        )
                    ok = False

            # thread-coarsening legs: force K where legal (illegal launches
            # fall back to the uncoarsened plan transparently) and hold the
            # run to the same bit-identical bar, counters included
            for factor in (2, 4):
                plan_k = jit.get_fused_plan(ck, (n,), ls, None, scalars,
                                            coarsen=factor)
                if plan_k.cck is not None:
                    result.coarsened_runs += 1
                bufs_k = {k: v.copy() for k, v in buffers.items()}
                res_k = plan_k.launch(bufs_k, dict(scalars))
                if not _compare(f"coarsen x{factor} vs interp", kernel, ref,
                                (bufs_k, dataclasses.asdict(res_k.counters)),
                                result):
                    ok = False
            if verbose:
                print(
                    f"fuzz{seed}: n={n} "
                    f"{'eligible' if cs.eligible else 'serial'} "
                    f"{'ok' if ok else 'MISMATCH'}"
                )
    finally:
        jit._MIN_CHUNK_LANES = saved_lanes
        workers.set_worker_count(None)

    print(
        f"fuzzed {result.seeds} kernel(s): {result.compiled} compiled, "
        f"{result.interp_fallback} interpreter-only, "
        f"{result.chunk_eligible} chunk-eligible, "
        f"{result.chunked_runs} chunked 4-worker run(s), "
        f"{result.coarsened_runs} coarsened run(s), "
        f"{result.fused_runs} fused run(s), "
        f"{len(result.mismatches)} mismatch(es)"
    )
    for m in result.mismatches:
        print(f"  MISMATCH {m}")
    return 0 if result.ok else 1
