"""``repro.obs`` — the observability subsystem.

The paper's whole method is *measurement*: it explains CPU/GPU gaps by
attributing time to scheduling, transfer, compute and vectorization.
This package turns every enqueue, JIT compile, cache hit and device-model
cost breakdown into inspectable, exportable telemetry:

:mod:`repro.obs.tracer`
    :class:`Tracer` — structured spans/instants/counters on both clocks
    (virtual device nanoseconds from event profiles, wall clock for the
    harness/JIT/cache self-profiling), with cost-component sub-spans and
    per-core / per-SM lanes reconstructed from ``KernelCost`` /
    ``TransferCost`` diagnostics.
:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — process-wide counters/gauges/histograms
    that absorb and unify the pre-existing scattered statistics
    (plan-cache hit rates, JIT compile stats, verifier tallies,
    per-experiment timing).
:mod:`repro.obs.export`
    Chrome Trace Event JSON (loads in Perfetto / ``chrome://tracing``),
    the schema validator the tests and CI pin, and the text
    summary/flamegraph plus trace diffing behind ``python -m repro
    trace``.

Tracing is opt-in (``--trace out.json`` on the CLI, ``REPRO_TRACE`` in
the environment, or :func:`tracing` in code) and *passive*: it reads
completed events and never touches virtual time, so ``results/*.csv``
are byte-identical with tracing on or off.  When no tracer is installed
every hook short-circuits on a single attribute load.
"""

from __future__ import annotations

import os
from typing import Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from .tracer import Tracer, current, install, tracing, uninstall
from .export import (
    diff_traces,
    load_trace,
    span_rollup,
    summarize,
    to_chrome_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "current",
    "diff_traces",
    "env_trace_path",
    "install",
    "load_trace",
    "span_rollup",
    "summarize",
    "to_chrome_trace",
    "tracing",
    "uninstall",
    "validate_trace",
    "write_trace",
]


def env_trace_path(default: str = "trace.json") -> Optional[str]:
    """The trace output path requested via ``REPRO_TRACE``, if any.

    ``REPRO_TRACE=1`` enables tracing to ``default``; any other non-empty,
    non-``0`` value is used as the output path itself.
    """
    v = os.environ.get("REPRO_TRACE", "")
    if v in ("", "0"):
        return None
    return default if v == "1" else v
