"""Command-line interface: ``python -m repro``.

Subcommands:

* ``experiments [names...] [--fast] [--csv DIR]`` — regenerate the paper's
  tables/figures (same engine as ``examples/reproduce_paper.py``);
* ``report <benchmark> [--size ...]`` — print the programmer-guideline
  report (roofline, bottleneck, vectorization, occupancy) for one of the
  suite's kernels;
* ``list`` — list experiments and benchmarks.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np


def _suite_benchmarks():
    from .suite import all_parboil_benchmarks, all_table2_benchmarks

    out = {}
    for b in all_table2_benchmarks() + all_parboil_benchmarks():
        out[b.name] = b
    return out


def cmd_list(args) -> int:
    from .harness.registry import EXPERIMENTS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("benchmarks:")
    for name in _suite_benchmarks():
        print(f"  {name}")
    return 0


def cmd_experiments(args) -> int:
    from .harness.registry import EXPERIMENTS, run_experiment

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        result = run_experiment(name, fast=args.fast)
        print(result.render())
        if csv_dir:
            (csv_dir / f"{name}.csv").write_text(result.to_csv())
    return 0


def cmd_report(args) -> int:
    from .metrics import kernel_report

    benches = _suite_benchmarks()
    if args.benchmark not in benches:
        print(
            f"unknown benchmark {args.benchmark!r}; try: "
            f"{', '.join(benches)}",
            file=sys.stderr,
        )
        return 2
    bench = benches[args.benchmark]
    gs = (
        tuple(args.size)
        if args.size
        else bench.default_global_sizes[0]
    )
    ls = bench.default_local_size
    host, scalars = bench.make_data(gs, np.random.default_rng(0))
    rep = kernel_report(
        bench.kernel(),
        gs,
        ls,
        scalars={k: float(v) for k, v in scalars.items()},
        buffer_bytes={k: v.nbytes for k, v in host.items()},
    )
    print(rep.render())
    return 0


def cmd_emit(args) -> int:
    from .kernelir.codegen import CodegenError, to_opencl_c, to_openmp_c

    benches = _suite_benchmarks()
    if args.benchmark not in benches:
        print(
            f"unknown benchmark {args.benchmark!r}; try: "
            f"{', '.join(benches)}",
            file=sys.stderr,
        )
        return 2
    kernel = benches[args.benchmark].kernel()
    try:
        src = (
            to_opencl_c(kernel) if args.target == "opencl"
            else to_openmp_c(kernel)
        )
    except CodegenError as e:
        print(f"cannot emit: {e}", file=sys.stderr)
        return 1
    try:
        print(src)
    except BrokenPipeError:  # e.g. `| head`
        pass
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_list = sub.add_parser("list", help="list experiments and benchmarks")
    p_list.set_defaults(fn=cmd_list)

    p_exp = sub.add_parser("experiments", help="regenerate tables/figures")
    p_exp.add_argument("names", nargs="*")
    p_exp.add_argument("--fast", action="store_true")
    p_exp.add_argument("--csv", metavar="DIR")
    p_exp.set_defaults(fn=cmd_experiments)

    p_rep = sub.add_parser("report", help="kernel performance report")
    p_rep.add_argument("benchmark")
    p_rep.add_argument("--size", type=int, nargs="+",
                       help="global work size (default: Table II/III input 1)")
    p_rep.set_defaults(fn=cmd_report)

    p_emit = sub.add_parser(
        "emit", help="emit a suite kernel as OpenCL C or C+OpenMP source"
    )
    p_emit.add_argument("benchmark")
    p_emit.add_argument("--target", choices=("opencl", "openmp"),
                        default="opencl")
    p_emit.set_defaults(fn=cmd_emit)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
