"""Benchmark for the beyond-the-paper artifact: the Section III-E proposal
(workgroup affinity in OpenCL), implemented and measured."""

from repro.harness.experiments import ext_affinity


def test_ext_affinity(benchmark):
    """Aligned pinning must beat stock OpenCL and misaligned pinning."""
    r = benchmark(ext_affinity.run, True)
    total = {s.label: s.points["total (ms)"] for s in r.series}
    assert total["aligned"] < total["stock"]
    assert total["aligned"] < total["misaligned"]
    consumer = {s.label: s.points["consumer (ms)"] for s in r.series}
    assert consumer["aligned"] < 0.95 * consumer["misaligned"]


def test_ext_omp_apps(benchmark):
    """Section III-F porting applied suite-wide: OpenCL wins the scalar
    kernels, OpenMP wins pure streaming."""
    from repro.harness.experiments import ext_omp_apps

    r = benchmark(ext_omp_apps.run, True)
    ocl, omp = r.get("OpenCL"), r.get("OpenMP")
    assert ocl.points["Blackscholes"] > omp.points["Blackscholes"]
    assert omp.points["Vectoraddition"] >= ocl.points["Vectoraddition"]


def test_ext_portability(benchmark):
    """The findings survive the projected AVX part."""
    from repro.harness.experiments import ext_portability

    r = benchmark(ext_portability.run, True)
    for s in r.series:
        assert s.points["coalescing gain (fig1)"] > 1.5
        assert s.points["copy/map time ratio (fig7)"] > 10


def test_conclusions(benchmark):
    """Section V: all five of the paper's conclusions auto-verify."""
    from repro.harness.experiments import conclusions

    r = benchmark(conclusions.run, True)
    verdicts = r.get("verified (1=PASS)").points
    assert all(v == 1.0 for v in verdicts.values()), verdicts
