"""Cycle-accounting report (:mod:`repro.tune.report`)."""

import math

import pytest

from repro.tune import (
    EXPLAIN_SCHEMA,
    cycle_accounting,
    explain_doc,
    render_explain,
    suite_benchmarks,
)

_REQUIRED_KEYS = {
    "kernel", "global_size", "local_size", "workgroups", "bottleneck",
    "vectorized", "effective_vector_width", "total_ns", "makespan_ns",
    "launch_overhead_ns", "per_item_bounds_cycles", "slots", "pruning",
}

_SLOT_KEYS = {
    "threads", "rounds", "slot_cycles", "busy_item_cycles",
    "busy_overhead_cycles", "dispatch_cycles", "idle_cycles",
    "utilization", "scheduling_overhead_fraction",
    "workitem_overhead_fraction",
}


@pytest.fixture(scope="module")
def benches():
    return suite_benchmarks()


def test_schema_and_keys(benches):
    doc = explain_doc({"Square": benches["Square"]})
    assert doc["schema"] == EXPLAIN_SCHEMA
    acct = doc["kernels"]["Square"]
    assert _REQUIRED_KEYS <= set(acct)
    assert _SLOT_KEYS <= set(acct["slots"])
    assert set(acct["per_item_bounds_cycles"]) == {
        "compute", "memory", "bandwidth", "latency", "binding",
    }


def test_slot_cycles_are_fully_accounted(benches):
    for name in ("Square", "Matrixmul", "Reduction"):
        acct = cycle_accounting(benches[name])
        s = acct["slots"]
        total = (
            s["busy_item_cycles"] + s["busy_overhead_cycles"]
            + s["dispatch_cycles"] + s["idle_cycles"]
        )
        # busy + dispatch + idle == makespan * threads (rounding aside)
        assert math.isclose(total, s["slot_cycles"], rel_tol=1e-3)
        assert 0.0 <= s["utilization"] <= 1.0


def test_binding_bound_is_the_max_bound(benches):
    acct = cycle_accounting(benches["Matrixmul"])
    b = acct["per_item_bounds_cycles"]
    assert b["binding"] == pytest.approx(
        max(b["compute"], b["memory"], b["bandwidth"], b["latency"]),
        rel=1e-6,
    )
    assert acct["bottleneck"] in ("compute", "memory", "bandwidth", "latency")


def test_pruning_verdict_is_consistent(benches):
    for name, bench in benches.items():
        acct = cycle_accounting(bench)
        p = acct["pruning"]
        overhead = acct["slots"]["workitem_overhead_fraction"]
        expect = not (
            acct["bottleneck"] in ("memory", "bandwidth") and overhead < 0.05
        )
        assert p["sweep_coalesce"] == expect, name
        assert p["reason"]


def test_render_mentions_every_kernel(benches):
    subset = {n: benches[n] for n in ("Square", "Reduction")}
    text = render_explain(explain_doc(subset))
    assert "Square" in text and "Reduction" in text
    assert "utilization" in text
