"""The complete CPU device model: kernel timing and data-transfer timing.

This is what the minicl runtime calls when its queue executes commands on the
"Intel-like CPU platform".  All times are deterministic virtual nanoseconds.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

from ..kernelir.analysis import KernelAnalysis, LaunchContext, LatencyTable, analyze_kernel
from ..obs import tracer as obs_tracer
from ..kernelir.ast import Kernel
from ..kernelir.compile import prepare_kernel as _jit_prepare
from ..kernelir.vectorize import OpenCLVectorizer, VectorizationReport
from ..plancache import LaunchPlanCache
from .cachemodel import MemoryCostModel
from .core import CoreModel, ItemCost
from .scheduler import ScheduleResult, WorkgroupScheduler, default_local_size
from .spec import CPUSpec, XEON_E5645

__all__ = ["KernelCost", "TransferCost", "CPUDeviceModel"]


@dataclasses.dataclass
class KernelCost:
    """Cost and diagnostics of one NDRange launch on the CPU."""

    total_ns: float
    item: ItemCost
    schedule: ScheduleResult
    analysis: KernelAnalysis
    vectorization: VectorizationReport
    local_size: Tuple[int, ...]

    @property
    def per_item_ns(self) -> float:
        n = self.analysis.ctx.total_workitems
        return self.total_ns / n if n else 0.0

    @property
    def gflops(self) -> float:
        """Achieved single-precision Gflop/s for this launch."""
        flops = self.analysis.per_item.flops * self.analysis.ctx.total_workitems
        return flops / self.total_ns if self.total_ns > 0 else 0.0


@dataclasses.dataclass
class TransferCost:
    """Cost of one host<->device data movement command."""

    total_ns: float
    api: str          # "copy" or "map"
    nbytes: int
    moved_bytes: int  # 0 for map on a shared-memory device


class CPUDeviceModel:
    """Timing model of OpenCL execution on the multicore CPU.

    Key physical fact (paper Section II-C): when the CPU is the compute
    device, host memory and device memory are *the same DRAM* behind the same
    caches — so allocation location has no performance effect, and mapping a
    buffer needs no data movement at all, while the copy APIs pay a real
    memcpy through a staging allocation.
    """

    is_gpu = False

    def __init__(self, spec: CPUSpec = XEON_E5645, *,
                 vectorize: bool = True,
                 workitem_serialization: bool = False,
                 latencies: Optional[LatencyTable] = None):
        self.spec = spec
        self._vectorize_kernels = vectorize
        #: model a SnuCL-style runtime (paper Section II-A): aggressive
        #: compiler serialization of workitems drops most of the per-item
        #: loop overhead, shrinking — not erasing — the Figure 1/3 effects.
        #: "Better OpenCL implementation can have less overhead than other
        #: suboptimal implementations."
        self._workitem_serialization = workitem_serialization
        self.latencies = latencies or LatencyTable(
            load=float(spec.l1_latency),
        )
        self.mem_model = MemoryCostModel(spec)
        self.core_model = CoreModel(spec)
        self.scheduler = WorkgroupScheduler(spec)
        self.vectorizer = OpenCLVectorizer(spec.simd_width_f32)
        #: memoized launch plans: repeated enqueues of the same (kernel,
        #: NDRange, scalars, buffer sizes) skip re-analysis + re-vectorization
        #: — the pocl-style compiled-work-group-function cache.
        self.plan_cache = LaunchPlanCache("cpu.kernel_cost", maxsize=4096)

    # -- tunable knobs -------------------------------------------------------
    # Every knob a tuner can flip in place drops the memoized plans on
    # mutation — the knobs are part of the plan-cache key, but auxiliary
    # state derived from them (and stale capacity) should not outlive a
    # knob change.  Reading stays a plain attribute access.
    @property
    def vectorize_kernels(self) -> bool:
        return self._vectorize_kernels

    @vectorize_kernels.setter
    def vectorize_kernels(self, value: bool) -> None:
        value = bool(value)
        if value != self._vectorize_kernels:
            self._vectorize_kernels = value
            self.invalidate_plans()

    @property
    def workitem_serialization(self) -> bool:
        return self._workitem_serialization

    @workitem_serialization.setter
    def workitem_serialization(self, value: bool) -> None:
        value = bool(value)
        if value != self._workitem_serialization:
            self._workitem_serialization = value
            self.invalidate_plans()

    # -- program build -------------------------------------------------------
    def prepare_kernel(self, kernel: Kernel) -> str:
        """clBuildProgram-time codegen: warm the kernel-JIT cache.

        Returns a one-line status for the program's ``jit_log``.
        """
        return _jit_prepare(kernel)

    # -- NDRange policy ------------------------------------------------------
    def choose_local_size(
        self, global_size: Sequence[int], local_size: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        """Apply the NULL-local-size policy when the host passes None."""
        gs = tuple(int(g) for g in global_size)
        if local_size is None:
            # keep every worker thread busy: at least ~2 groups per logical core
            return default_local_size(
                gs, min_workgroups=2 * self.spec.logical_cores
            )
        return tuple(int(l) for l in local_size)

    # -- kernel timing ----------------------------------------------------------
    def kernel_cost(
        self,
        kernel: Kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        *,
        scalars: Optional[Dict[str, float]] = None,
        buffer_bytes: Optional[Dict[str, int]] = None,
    ) -> KernelCost:
        """Virtual time to execute one NDRange launch.

        Results are memoized in :attr:`plan_cache`; the key covers every
        input the plan depends on (buffer *contents* are deliberately
        excluded — cost is a function of shape, not data).  Call
        :meth:`invalidate_plans` after mutating model knobs in place.
        """
        gs = tuple(int(g) for g in global_size)
        ls = self.choose_local_size(gs, local_size)
        key = (
            kernel.fingerprint(),
            gs,
            ls,
            tuple(sorted((k, float(v)) for k, v in (scalars or {}).items())),
            tuple(sorted((buffer_bytes or {}).items())),
            self.vectorize_kernels,
            self.workitem_serialization,
        )
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        tracer = obs_tracer.ACTIVE
        span = (
            tracer.wall_span(f"cpu plan {kernel.name}", "model",
                             {"global_size": list(gs), "local_size": list(ls)})
            if tracer is not None else contextlib.nullcontext()
        )
        with span:
            ctx = LaunchContext(gs, ls, dict(scalars or {}), self.latencies)
            analysis = analyze_kernel(kernel, ctx)

            if self.vectorize_kernels:
                vec = self.vectorizer.vectorize(kernel, ctx, analysis.accesses)
            else:
                vec = VectorizationReport(False, 1, ["vectorization disabled"])

            mem = self.mem_model.estimate(analysis, buffer_bytes)
            threads = min(self.spec.logical_cores, ctx.workgroup_count)
            dram_share = 1.0 / max(1, min(threads, self.spec.physical_cores))
            item = self.core_model.item_cycles(analysis, vec, mem,
                                               dram_share=dram_share)

            items_per_wg = ctx.workgroup_size
            item_overhead = self.spec.workitem_overhead_cycles
            if self.workitem_serialization:
                item_overhead /= 8.0  # SnuCL-style serialized workitem loop
            wg_cycles = items_per_wg * (
                item.cycles + item_overhead
                / max(1.0, item.effective_vector_width)
            )
            sched = self.scheduler.makespan(ctx.workgroup_count, wg_cycles)
            total_ns = (
                self.spec.cycles_to_ns(sched.makespan_cycles)
                + self.spec.kernel_launch_overhead_ns
            )
            cost = KernelCost(
                total_ns=total_ns,
                item=item,
                schedule=sched,
                analysis=analysis,
                vectorization=vec,
                local_size=ls,
            )
        self.plan_cache.put(key, cost)
        return cost

    def invalidate_plans(self) -> None:
        """Drop every memoized launch plan (after in-place model changes)."""
        self.plan_cache.invalidate()

    # -- transfer timing -----------------------------------------------------
    def transfer_cost(self, nbytes: int, api: str, direction: str = "h2d",
                      *, pinned: bool = False) -> TransferCost:
        """Cost of a read/write (copy) or map/unmap command.

        ``copy``: the runtime allocates a staging region and memcpys —
        bandwidth-limited, so the gap versus ``map`` grows with size (the
        paper's Figure 7/8 observation).

        ``map``: returns a pointer into the same DRAM; only API bookkeeping
        and page-table work, independent of where the buffer was "allocated"
        (device vs host flags are both backed by the same physical memory).
        """
        if api == "copy":
            bw_bytes_per_ns = self.spec.copy_bandwidth_gbps  # GB/s == bytes/ns
            t = self.spec.copy_api_overhead_ns + nbytes / bw_bytes_per_ns
            return TransferCost(t, "copy", nbytes, nbytes)
        if api == "map":
            # touch one page-table entry per 4 KiB mapped
            pages = max(1, math.ceil(nbytes / 4096))
            t = self.spec.map_api_overhead_ns + pages * 1.0
            return TransferCost(t, "map", nbytes, 0)
        raise ValueError(f"unknown transfer api {api!r}")

    # -- descriptions -----------------------------------------------------------
    def describe(self) -> dict:
        return self.spec.describe()

    @property
    def name(self) -> str:
        return self.spec.name
