"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments_and_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "ext_affinity" in out
        assert "Blackscholes" in out and "CP: cenergy" in out


class TestExperiments:
    def test_runs_subset_fast(self, capsys):
        assert main(["experiments", "fig11", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "vectorized" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "fig9" in err  # did-you-mean suggestion

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["experiments", "fig11", "--fast", "--csv", str(tmp_path)]
        ) == 0
        csv = (tmp_path / "fig11.csv").read_text()
        assert csv.startswith("series,")

    def test_run_alias(self, capsys):
        assert main(["run", "fig11", "--fast"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_jobs_csv_matches_serial(self, tmp_path, capsys):
        serial, parallel = tmp_path / "s", tmp_path / "p"
        assert main(["experiments", "fig11", "table1", "--fast",
                     "--csv", str(serial)]) == 0
        assert main(["experiments", "fig11", "table1", "--fast",
                     "--jobs", "2", "--csv", str(parallel)]) == 0
        capsys.readouterr()
        for name in ("fig11", "table1"):
            assert (serial / f"{name}.csv").read_text() == \
                   (parallel / f"{name}.csv").read_text()


class TestEmit:
    def test_emit_opencl(self, capsys):
        assert main(["emit", "Square"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void square(" in out

    def test_emit_openmp(self, capsys):
        assert main(["emit", "Vectoraddition", "--target", "openmp"]) == 0
        out = capsys.readouterr().out
        assert "#pragma omp parallel for" in out

    def test_emit_unportable_fails_cleanly(self, capsys):
        assert main(["emit", "Reduction", "--target", "openmp"]) == 1
        assert "workgroup constructs" in capsys.readouterr().err

    def test_emit_unknown_benchmark(self):
        assert main(["emit", "NoSuchApp"]) == 2

    def test_emit_many_with_jobs_matches_serial(self, capsys):
        assert main(["emit", "Square", "Vectoraddition"]) == 0
        serial = capsys.readouterr().out
        assert main(["emit", "Square", "Vectoraddition", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestBench:
    def test_bench_subset_json(self, capsys):
        import json

        assert main(["bench", "--quick", "--no-speedup", "table1"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["schema"] == 1
        assert "table1" in doc["runs"]["quick"]["experiments"]

    def test_bench_compare_gate(self, tmp_path, capsys):
        import json

        slow = {"schema": 1, "runs": {"quick": {
            "mode": "quick", "experiments": {}, "total_seconds": 1e-9,
        }}}
        p = tmp_path / "base.json"
        p.write_text(json.dumps(slow))
        assert main(["bench", "--quick", "--no-speedup", "fig11",
                     "--compare", str(p)]) == 1
        capsys.readouterr()


class TestReport:
    def test_report_for_square(self, capsys):
        assert main(["report", "Square", "--size", "100000"]) == 0
        out = capsys.readouterr().out
        assert "kernel performance report: square" in out
        assert "bottleneck" in out and "verdict" in out

    def test_report_default_size(self, capsys):
        assert main(["report", "Prefixsum"]) == 0
        out = capsys.readouterr().out
        assert "prefixSum" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["report", "NoSuchApp"]) == 2

    def test_unknown_benchmark_suggests_close_name(self, capsys):
        assert main(["report", "Sqare"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'Sqare'" in err
        assert "did you mean" in err and "Square" in err


class TestLint:
    def test_lint_all_is_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "0 warning(s)" in out
        assert "clean" in out

    def test_lint_single_benchmark(self, capsys):
        assert main(["lint", "Square"]) == 0
        out = capsys.readouterr().out
        assert "linted 1 kernel(s)" in out

    def test_lint_reports_vectorization_notes(self, capsys):
        assert main(["lint", "Blackscholes"]) == 0
        out = capsys.readouterr().out
        assert "R-VEC" in out and "erf" in out

    def test_lint_no_notes_flag(self, capsys):
        assert main(["lint", "Blackscholes", "--no-notes"]) == 0
        out = capsys.readouterr().out
        assert "R-VEC" not in out

    def test_lint_covers_micro_families(self, capsys):
        assert main(["lint", "MBench5", "ILP-3"]) == 0
        out = capsys.readouterr().out
        assert "linted 2 kernel(s)" in out

    def test_lint_unknown_benchmark(self, capsys):
        assert main(["lint", "NoSuchApp"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
