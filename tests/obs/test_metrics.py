"""MetricsRegistry: instruments plus absorption of the legacy stat sources."""

import pytest

from repro.obs import metrics as m


class TestInstruments:
    def test_counter_increments(self):
        c = m.Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            m.Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = m.Gauge("g")
        g.set(1)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_summary(self):
        h = m.Histogram("h")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0 and h.max == 9.0
        assert h.mean == pytest.approx(4.0)

    def test_registry_returns_same_instrument(self):
        reg = m.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_reset_clears_everything(self):
        reg = m.MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestAbsorption:
    def test_absorb_cache_stats_explicit(self):
        reg = m.MetricsRegistry()
        reg.absorb_cache_stats({
            "cpu.kernel_cost": {"hits": 8, "misses": 2, "hit_rate": 0.8},
        })
        snap = reg.snapshot()["gauges"]
        assert snap["plancache.cpu.kernel_cost.hits"] == 8
        assert snap["plancache.cpu.kernel_cost.hit_rate"] == 0.8

    def test_absorb_cache_stats_from_plancache(self):
        """Default source is the live plancache registry — real families."""
        from repro.simcpu.device import CPUDeviceModel

        CPUDeviceModel()  # registers the cpu.kernel_cost cache family
        reg = m.MetricsRegistry()
        reg.absorb_cache_stats()
        gauges = reg.snapshot()["gauges"]
        assert any(k.startswith("plancache.cpu.kernel_cost.")
                   for k in gauges)

    def test_absorb_jit_stats(self):
        reg = m.MetricsRegistry()
        reg.absorb_jit_stats({
            "engine": "compiled",
            "kernels_compiled": 4,
            "kernels_unsupported": 1,
            "launches": {"compiled": 10, "interp_fallback": 2,
                         "interp_forced": 0},
        })
        gauges = reg.snapshot()["gauges"]
        assert gauges["jit.kernels_compiled"] == 4
        assert gauges["jit.launches.interp_fallback"] == 2

    def test_absorb_jit_stats_live(self):
        from repro.kernelir import compile as klcompile

        reg = m.MetricsRegistry()
        reg.absorb_jit_stats()
        gauges = reg.snapshot()["gauges"]
        assert "jit.kernels_compiled" in gauges
        assert set(f"jit.launches.{k}"
                   for k in klcompile.compile_stats()["launches"]) \
            <= set(gauges)

    def test_absorb_verifier_tally(self):
        from repro.harness.runner import DiagnosticTally

        tally = DiagnosticTally()
        tally.launches = 3
        tally.counts = {"error": 1, "warning": 2, "note": 0}
        reg = m.MetricsRegistry()
        reg.absorb_verifier_tally(tally)
        reg.absorb_verifier_tally(tally)  # counters accumulate
        counters = reg.snapshot()["counters"]
        assert counters["verify.launches"] == 6
        assert counters["verify.errors"] == 2
        assert counters["verify.warnings"] == 4

    def test_observe_experiment(self):
        reg = m.MetricsRegistry()
        reg.observe_experiment("fig7", 0.25)
        reg.observe_experiment("fig11", 0.75)
        snap = reg.snapshot()
        assert snap["counters"]["experiment.runs"] == 2
        assert snap["gauges"]["experiment.fig7.seconds"] == 0.25
        hist = snap["histograms"]["experiment.seconds"]
        assert hist["count"] == 2 and hist["mean"] == pytest.approx(0.5)

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = m.MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must serialize


class TestRunnerIntegration:
    def test_run_experiment_populates_registry_when_tracing(self):
        from repro import obs
        from repro.harness.registry import run_experiment

        obs.REGISTRY.reset()
        t = obs.Tracer()
        with obs.tracing(t):
            run_experiment("fig11", fast=True)
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["experiment.runs"] == 1
        assert "experiment.fig11.seconds" in snap["gauges"]
        assert snap["counters"]["verify.launches"] > 0
        obs.REGISTRY.reset()

    def test_run_experiment_skips_registry_when_not_tracing(self):
        from repro import obs
        from repro.harness.registry import run_experiment

        obs.REGISTRY.reset()
        run_experiment("fig11", fast=True)
        assert obs.REGISTRY.snapshot()["counters"] == {}
