"""Tests for the shared dataflow framework (``repro.kernelir.dataflow``).

Covers the lattice algebra (property tests on fixed seeds), the
congruence-of-strides domain, the interval fixes for negative-stride and
zero-trip loops, the dataflow-only diagnostics (R-DEAD-STORE,
R-UNINIT-PRIVATE, R-DIV-ZERO, R-SHIFT-RANGE, barrier-in-divergent-loop),
unrolled-site dedup, the chunk-safety verdicts consumed by the scheduler,
the analysis cache/stats, and a short differential-fuzzer smoke run.
"""

import math
import random

import pytest

from repro.kernelir import (
    F32,
    I32,
    KernelBuilder,
    LaunchContext,
    verify_launch,
)
from repro.kernelir import ast as ir
from repro.kernelir.dataflow import (
    AffineIndex,
    Divergence,
    Interval,
    StrideCongruence,
    analysis_stats,
    analyze_launch,
    chunk_safety,
    location_sort_key,
    reset_analysis_stats,
)


def _ctx():
    return LaunchContext((64,), (16,))


def _rules(report):
    return {d.rule for d in report.diagnostics}


def _diags(report, rule):
    return [d for d in report.diagnostics if d.rule == rule]


# ---------------------------------------------------------------------------
# Interval lattice: property tests on a fixed seed
# ---------------------------------------------------------------------------


def _rand_interval(rng):
    r = rng.random()
    if r < 0.08:
        return Interval.TOP
    if r < 0.16:
        return Interval.BOTTOM
    lo = rng.choice([-math.inf] + list(range(-20, 21)))
    hi = rng.choice([math.inf] + list(range(-20, 21)))
    return Interval(lo, hi)


def _leq(a, b):
    """a ⊑ b in the interval lattice (empty is bottom)."""
    if a.empty:
        return True
    if b.empty:
        return False
    return b.lo <= a.lo and a.hi <= b.hi


class TestIntervalLattice:
    def test_join_idempotent_and_commutative(self):
        rng = random.Random(7)
        for _ in range(300):
            a, b = _rand_interval(rng), _rand_interval(rng)
            assert a.join(a) == a or a.empty  # any empty rep joins to itself
            assert a.join(b) == b.join(a) or (a.empty and b.empty)

    def test_join_is_an_upper_bound(self):
        rng = random.Random(8)
        for _ in range(300):
            a, b = _rand_interval(rng), _rand_interval(rng)
            j = a.join(b)
            assert _leq(a, j) and _leq(b, j)

    def test_join_monotone(self):
        rng = random.Random(9)
        for _ in range(300):
            a, b, c = (_rand_interval(rng) for _ in range(3))
            big = a.join(b)  # a ⊑ big by construction
            assert _leq(a.join(c), big.join(c))

    def test_meet_is_a_lower_bound(self):
        rng = random.Random(10)
        for _ in range(300):
            a, b = _rand_interval(rng), _rand_interval(rng)
            m = a.meet(b)
            assert _leq(m, a) and _leq(m, b)

    def test_widen_covers_join_and_stabilizes(self):
        rng = random.Random(11)
        for _ in range(300):
            a, b = _rand_interval(rng), _rand_interval(rng)
            w = a.widen(b)
            assert _leq(a.join(b), w)
            # a second widening by the same operand must be a no-op
            assert w.widen(b) == w

    def test_top_bottom_membership(self):
        assert Interval.TOP.is_top
        assert Interval.BOTTOM.empty
        assert 5.0 in Interval(0, 10)
        assert 11.0 not in Interval(0, 10)


# ---------------------------------------------------------------------------
# Stride/congruence lattice
# ---------------------------------------------------------------------------


class TestStrideCongruence:
    def test_constants_and_make_normalization(self):
        c = StrideCongruence.const(7)
        assert c.is_const and c.contains(7) and not c.contains(8)
        assert StrideCongruence.make(4, 10) == StrideCongruence.make(4, 2)
        assert StrideCongruence.make(-4, 2).mod == 4

    def test_from_aff_coalescing_facts(self):
        # 4*g + 2  ->  x ≡ 2 (mod 4)
        a = AffineIndex(2.0, {("g", 0): 4.0})
        s = StrideCongruence.from_aff(a)
        assert (s.mod, s.rem) == (4, 2)
        # 4*g + 6*j  ->  gcd stride 2
        b = AffineIndex(0.0, {("g", 0): 4.0, ("loop", "j"): 6.0})
        assert StrideCongruence.from_aff(b).mod == 2
        # non-integer coefficient falls to top
        t = StrideCongruence.from_aff(AffineIndex(0.0, {("g", 0): 0.5}))
        assert t.is_top

    def test_join_gcd_rule(self):
        # two constants join to the gcd-of-difference congruence
        j = StrideCongruence.const(4).join(StrideCongruence.const(10))
        assert (j.mod, j.rem) == (6, 4)
        assert j.contains(4) and j.contains(10) and j.contains(16)
        assert not j.contains(5)

    def test_join_properties_preserve_membership(self):
        rng = random.Random(12)
        for _ in range(300):
            m1, m2 = rng.randrange(0, 9), rng.randrange(0, 9)
            a = StrideCongruence.make(m1, rng.randrange(-20, 20))
            b = StrideCongruence.make(m2, rng.randrange(-20, 20))
            j = a.join(b)
            assert j == b.join(a)
            assert a.join(a) == a
            for k in range(4):
                va = a.rem + k * a.mod
                vb = b.rem + k * b.mod
                assert j.contains(va), (a, b, j, va)
                assert j.contains(vb), (a, b, j, vb)


class TestDivergence:
    def test_two_point_join(self):
        U, V = Divergence.UNIFORM, Divergence.VARYING
        assert U.join(U) == U
        assert U.join(V) == V == V.join(U) == V.join(V)


# ---------------------------------------------------------------------------
# Interval edge cases: zero-trip and negative-stride loops
# ---------------------------------------------------------------------------


class TestLoopIntervalEdgeCases:
    def test_zero_trip_loop_emits_no_diagnostics(self):
        # the body is unreachable: a wildly OOB access inside must not fire
        kb = KernelBuilder("zerotrip")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        with kb.loop("j", 5, 5):
            out[g] = a[g + 1000000]
        out[g] = a[g]
        rep = verify_launch(kb.finish(), _ctx(),
                            buffer_sizes={"a": 64, "out": 64},
                            include_vectorization=False)
        assert rep.diagnostics == []

    def test_negative_stride_loop_keeps_finite_bounds(self):
        # j runs 10, 9, ..., 1: a[j] stays in [1, 10] — no spurious R-OOB
        kb = KernelBuilder("negstride")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("j", 10, 0, -1) as j:
            kb.let(acc.name, acc + a[j])
        out[g] = acc
        rep = verify_launch(kb.finish(), _ctx(),
                            buffer_sizes={"a": 64, "out": 64},
                            include_vectorization=False)
        assert "R-OOB" not in _rules(rep)

    def test_negative_stride_loop_still_catches_real_oob(self):
        # precision check: the same loop var shifted below 0 must fire
        kb = KernelBuilder("negstride_oob")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        acc = kb.let("acc", kb.f32(0.0))
        with kb.loop("j", 10, 0, -1) as j:
            kb.let(acc.name, acc + a[j - 20])
        out[g] = acc
        rep = verify_launch(kb.finish(), _ctx(),
                            buffer_sizes={"a": 64, "out": 64},
                            include_vectorization=False)
        assert "R-OOB" in _rules(rep)


# ---------------------------------------------------------------------------
# Divergence analysis: barrier in divergent loop vs divergent if
# ---------------------------------------------------------------------------


class TestBarrierDivergence:
    def test_barrier_in_loop_with_varying_trip_count(self):
        kb = KernelBuilder("divloop")
        out = kb.buffer("out", F32, access="w")
        tile = kb.local_array("tile", 16, F32)
        g = kb.global_id(0)
        lid = kb.local_id(0)
        with kb.loop("j", 0, g):
            tile[lid] = kb.f32(1.0)
            kb.barrier()
        out[g] = tile[lid]
        rep = verify_launch(kb.finish(), _ctx(),
                            include_vectorization=False)
        found = _diags(rep, "R-BARRIER-DIV")
        assert found and "trip count varies" in found[0].message

    def test_barrier_under_divergent_if(self):
        kb = KernelBuilder("divif")
        out = kb.buffer("out", F32, access="w")
        tile = kb.local_array("tile", 16, F32)
        g = kb.global_id(0)
        lid = kb.local_id(0)
        with kb.if_(g < 32):
            tile[lid] = kb.f32(1.0)
            kb.barrier()
        out[g] = tile[lid]
        rep = verify_launch(kb.finish(), _ctx(),
                            include_vectorization=False)
        found = _diags(rep, "R-BARRIER-DIV")
        assert found and "condition varies" in found[0].message

    def test_uniform_loop_barrier_is_clean(self):
        kb = KernelBuilder("uniloop")
        out = kb.buffer("out", F32, access="w")
        tile = kb.local_array("tile", 16, F32)
        g = kb.global_id(0)
        lid = kb.local_id(0)
        with kb.loop("j", 0, 4):
            tile[lid] = kb.f32(1.0)
            kb.barrier()
        out[g] = tile[lid]
        rep = verify_launch(kb.finish(), _ctx(),
                            include_vectorization=False)
        assert "R-BARRIER-DIV" not in _rules(rep)


# ---------------------------------------------------------------------------
# Dataflow-only diagnostics
# ---------------------------------------------------------------------------


class TestDeadStore:
    def test_overwritten_store_is_flagged(self):
        kb = KernelBuilder("ds")
        a = kb.buffer("a", F32, access="r")
        b = kb.buffer("b", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = a[g]
        out[g] = b[g]
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-DEAD-STORE")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_read_between_stores_keeps_both(self):
        kb = KernelBuilder("ds_read")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="rw")
        g = kb.global_id(0)
        out[g] = a[g]
        t = kb.let("t", out[g])
        out[g] = t + kb.f32(1.0)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-DEAD-STORE" not in _rules(rep)

    def test_barrier_between_stores_keeps_both(self):
        kb = KernelBuilder("ds_barrier")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = a[g]
        kb.barrier()
        out[g] = a[g] * kb.f32(2.0)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-DEAD-STORE" not in _rules(rep)

    def test_sibling_branch_stores_are_not_dead(self):
        kb = KernelBuilder("ds_branch")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 32):
            out[g] = a[g]
        with kb.else_():
            out[g] = a[g] * kb.f32(2.0)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-DEAD-STORE" not in _rules(rep)


class TestUninitPrivate:
    def test_never_assigned_is_an_error(self):
        kb = KernelBuilder("uninit")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = ir.Var("zz", F32) + a[g]
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-UNINIT-PRIVATE")
        assert found and found[0].severity == "error"
        assert "never" in found[0].message

    def test_branch_only_assignment_is_a_maybe_warning(self):
        kb = KernelBuilder("maybeuninit")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 16):
            kb.let("w", a[g])
        out[g] = ir.Var("w", F32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-UNINIT-PRIVATE")
        assert found and found[0].severity == "warning"
        assert "some control-flow paths" in found[0].message

    def test_both_branches_assigning_is_clean(self):
        kb = KernelBuilder("bothinit")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        with kb.if_(g < 16):
            kb.let("w", a[g])
        with kb.else_():
            kb.let("w", kb.f32(0.0))
        out[g] = ir.Var("w", F32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-UNINIT-PRIVATE" not in _rules(rep)


class TestDivZeroAndShift:
    def test_certain_integer_div_zero_is_an_error(self):
        kb = KernelBuilder("divzero")
        iout = kb.buffer("iout", I32, access="w")
        g = kb.global_id(0)
        iout[g] = kb.cast(g % ir.Const(0, I32), I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-DIV-ZERO")
        assert found and found[0].severity == "error"

    def test_range_containing_zero_is_a_warning(self):
        # symbolic loop starting at 0: divisor interval contains 0
        kb = KernelBuilder("divmaybe")
        iout = kb.buffer("iout", I32, access="w")
        n = kb.scalar("n", I32)
        g = kb.global_id(0)
        with kb.loop("j", 0, n) as j:
            iout[g] = kb.cast(g % j, I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-DIV-ZERO")
        assert found and found[0].severity == "warning"
        assert "may be zero" in found[0].message

    def test_nonzero_divisor_is_clean(self):
        kb = KernelBuilder("divok")
        iout = kb.buffer("iout", I32, access="w")
        g = kb.global_id(0)
        iout[g] = kb.cast(g % ir.Const(7, I32), I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-DIV-ZERO" not in _rules(rep)

    def test_shift_beyond_width_is_flagged(self):
        kb = KernelBuilder("shiftwide")
        iout = kb.buffer("iout", I32, access="w")
        g = kb.global_id(0)
        iout[g] = kb.cast(g, I32) << ir.Const(40, I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        found = _diags(rep, "R-SHIFT-RANGE")
        assert found and "outside [0, 32)" in found[0].message

    def test_in_range_shift_is_clean(self):
        kb = KernelBuilder("shiftok")
        iout = kb.buffer("iout", I32, access="w")
        g = kb.global_id(0)
        iout[g] = kb.cast(g, I32) << ir.Const(2, I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert "R-SHIFT-RANGE" not in _rules(rep)


class TestUnrolledSiteDedup:
    def test_constant_trip_loop_reports_each_defect_once(self):
        # the loop fully unrolls to 4 copies of the same defective store;
        # site-based dedup must fold them into one diagnostic
        kb = KernelBuilder("dedup")
        iout = kb.buffer("iout", I32, access="w")
        g = kb.global_id(0)
        with kb.loop("j", 0, 4):
            iout[g] = kb.cast(g % ir.Const(0, I32), I32)
        rep = verify_launch(kb.finish(), _ctx(), include_vectorization=False)
        assert len(_diags(rep, "R-DIV-ZERO")) == 1


class TestDeterministicOrdering:
    def test_location_sort_key_natural_order(self):
        locs = ["body[10]", "body[2]", "body[2]/then[0]", "kernel"]
        ordered = sorted(locs, key=location_sort_key)
        assert ordered.index("body[2]") < ordered.index("body[2]/then[0]")
        assert ordered.index("body[2]/then[0]") < ordered.index("body[10]")

    def test_report_order_is_stable(self):
        kb = KernelBuilder("order")
        a = kb.buffer("a", F32, access="r")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = a[g]
        out[g] = ir.Var("zz", F32)  # uninit error + dead store warning
        k = kb.finish()
        r1 = verify_launch(k, _ctx(), include_vectorization=False)
        r2 = verify_launch(k, _ctx(), include_vectorization=False)
        assert [d.format() for d in r1.diagnostics] == \
               [d.format() for d in r2.diagnostics]
        sevs = [d.severity for d in r1.diagnostics]
        assert sevs == sorted(sevs, key=("error", "warning", "note").index)


# ---------------------------------------------------------------------------
# Chunk-safety verdicts (the scheduler/fusion consumer)
# ---------------------------------------------------------------------------


def _elementwise():
    kb = KernelBuilder("cs_ok")
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = a[g] * a[g]
    return kb.finish()


class TestChunkSafety:
    def test_injective_elementwise_is_eligible(self):
        cs = chunk_safety(_elementwise(), (64,), (16,), {})
        assert cs.eligible

    def test_racy_constant_store_is_ineligible(self):
        kb = KernelBuilder("cs_race")
        out = kb.buffer("out", F32, access="w")
        out[0] = kb.f32(1.0)
        cs = chunk_safety(kb.finish(), (64,), (16,), {})
        assert not cs.eligible

    def test_barrier_kernel_is_ineligible(self):
        kb = KernelBuilder("cs_barrier")
        out = kb.buffer("out", F32, access="w")
        tile = kb.local_array("tile", 16, F32)
        g = kb.global_id(0)
        lid = kb.local_id(0)
        tile[lid] = kb.f32(1.0)
        kb.barrier()
        out[g] = tile[lid]
        cs = chunk_safety(kb.finish(), (64,), (16,), {})
        assert not cs.eligible

    def test_suppressed_race_rule_blocks_eligibility(self):
        # a suppressed R-RACE-GLOBAL means "we know, don't tell us" — the
        # scheduler must still refuse to chunk such a kernel
        kb = KernelBuilder("cs_suppressed")
        out = kb.buffer("out", F32, access="w")
        g = kb.global_id(0)
        out[g] = kb.f32(1.0)
        kb.suppress("R-RACE-GLOBAL")
        cs = chunk_safety(kb.finish(), (64,), (16,), {})
        assert not cs.eligible

    def test_suite_chunk_eligible_fraction_meets_baseline(self):
        # the PR 5 baseline: 22 of the 27 shipped kernels chunk-eligible
        import numpy as np

        from repro.__main__ import _lint_benchmarks

        rng = np.random.default_rng(0)
        checked = eligible = 0
        for name, b in sorted(_lint_benchmarks().items()):
            gs = tuple(int(g) for g in b.default_global_sizes[0])
            _, scalars = b.make_data(gs, rng)
            scalars = {**scalars, **b.scalars_for(1)}
            kernel, launch_gs, ls = b.resolved_launch(gs)
            cs = chunk_safety(kernel, launch_gs, ls,
                              {k: float(v) for k, v in scalars.items()})
            checked += 1
            eligible += bool(cs.eligible)
        assert checked >= 27
        assert eligible / checked >= 22 / 27, (eligible, checked)


# ---------------------------------------------------------------------------
# Cache + stats
# ---------------------------------------------------------------------------


class TestCacheAndStats:
    def test_analyze_launch_reuses_cached_bundle(self):
        k = _elementwise()
        ctx = _ctx()
        d1 = analyze_launch(k, ctx)
        d2 = analyze_launch(k, ctx)
        assert d1 is d2

    def test_stats_counters_and_fraction(self):
        reset_analysis_stats()
        k = _elementwise()
        analyze_launch(k, LaunchContext((128,), (16,)))
        chunk_safety(k, (128,), (16,), {})
        s = analysis_stats()
        for key in (
            "kernels_analyzed", "interval_iterations",
            "divergence_iterations", "stride_queries",
            "reachdef_iterations", "cache_hit_rate",
            "chunk_checked", "chunk_eligible", "chunk_eligible_fraction",
        ):
            assert key in s, key
        assert s["kernels_analyzed"] >= 1
        assert s["chunk_checked"] == 1
        assert s["chunk_eligible"] == 1
        assert s["chunk_eligible_fraction"] == 1.0


# ---------------------------------------------------------------------------
# Persistent analysis partition: round-trip and corrupt-entry fallback
# ---------------------------------------------------------------------------


def _unique_kernel(name):
    kb = KernelBuilder(name)
    a = kb.buffer("a", F32, access="r")
    out = kb.buffer("out", F32, access="w")
    g = kb.global_id(0)
    out[g] = a[g] + a[g]
    return kb.finish()


class TestAnalysisPersistence:
    """The disk ``analysis`` partition must replay bit-for-bit and fall back
    to a fresh fixpoint (never crash) on torn or structurally corrupt
    entries."""

    @staticmethod
    def _findings(df):
        # exercise both replay scanners: flag mismatches and OOB escapes
        return (
            df.findings({"a": 64, "out": 64}, {"a": "r", "out": "w"}),
            df.findings({"a": 1, "out": 1}, {"a": "w", "out": "r"}),
        )

    @staticmethod
    def _analyze_tracking_entry(kernel, ctx):
        """Analyze ``kernel`` fresh and return (df, the disk entry it
        stored)."""
        from repro import diskcache

        part = diskcache.cache_dir() / diskcache.code_version()[:16] / "analysis"
        before = set(part.glob("*.json")) if part.is_dir() else set()
        df = analyze_launch(kernel, ctx)
        added = sorted(set(part.glob("*.json")) - before)
        assert len(added) == 1, "fresh analysis should store exactly one entry"
        return df, added[0]

    def test_disk_round_trip_replays_identically(self):
        from repro import diskcache
        from repro.kernelir import dataflow

        assert diskcache.enabled()
        k = _unique_kernel("persist_rt")
        ctx = _ctx()
        fresh, _entry = self._analyze_tracking_entry(k, ctx)
        want = self._findings(fresh)

        dataflow._ANALYSIS_CACHE.invalidate()
        hits = analysis_stats()["analysis_disk_hits"]
        warm = analyze_launch(k, ctx)
        assert analysis_stats()["analysis_disk_hits"] == hits + 1
        assert isinstance(warm, dataflow.CachedDataflow)
        assert self._findings(warm) == want

    def test_torn_entry_falls_back_to_fresh_analysis(self):
        from repro.kernelir import dataflow

        k = _unique_kernel("persist_torn")
        ctx = _ctx()
        fresh, entry = self._analyze_tracking_entry(k, ctx)
        want = self._findings(fresh)

        entry.write_text("{\"version\": \"torn", encoding="utf-8")
        dataflow._ANALYSIS_CACHE.invalidate()
        analyzed = analysis_stats()["kernels_analyzed"]
        df = analyze_launch(k, ctx)
        assert analysis_stats()["kernels_analyzed"] == analyzed + 1
        assert not isinstance(df, dataflow.CachedDataflow)
        assert self._findings(df) == want

    def test_structurally_corrupt_entry_is_reanalyzed_and_overwritten(self):
        import json

        from repro import diskcache
        from repro.kernelir import dataflow

        k = _unique_kernel("persist_bad_rows")
        ctx = _ctx()
        fresh, entry = self._analyze_tracking_entry(k, ctx)
        want = self._findings(fresh)

        # valid JSON with the right version and an ``accesses`` list, so it
        # survives diskcache validation — but rows CachedDataflow can't replay
        entry.write_text(
            json.dumps({"version": diskcache.code_version(),
                        "accesses": [["only-a-name"]]}),
            encoding="utf-8",
        )
        dataflow._ANALYSIS_CACHE.invalidate()
        analyzed = analysis_stats()["kernels_analyzed"]
        df = analyze_launch(k, ctx)
        assert analysis_stats()["kernels_analyzed"] == analyzed + 1
        assert self._findings(df) == want

        # the fresh fixpoint wrote the entry back: next cold lookup disk-hits
        dataflow._ANALYSIS_CACHE.invalidate()
        hits = analysis_stats()["analysis_disk_hits"]
        again = analyze_launch(k, ctx)
        assert analysis_stats()["analysis_disk_hits"] == hits + 1
        assert isinstance(again, dataflow.CachedDataflow)
        assert self._findings(again) == want


# ---------------------------------------------------------------------------
# Differential fuzzer smoke
# ---------------------------------------------------------------------------


class TestFuzzSmoke:
    def test_short_fuzz_run_is_clean(self):
        from repro.kernelir.fuzz import run_fuzz

        assert run_fuzz(seeds=20, quick=True) == 0
